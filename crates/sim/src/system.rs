//! The simulated PIM system: PEs + host bus + time meter.

use std::sync::Arc;

use crate::cost::{Breakdown, Category, TimeModel};
use crate::domain::{transpose8x8, LanePerm};
use crate::fault::{CorruptionEvent, FaultCtx, FaultPlan};
use crate::geometry::{DimmGeometry, EgId, PeId, BURST_BYTES, LANES, LANE_BYTES};
use crate::pe::Pe;

/// A complete PIM-enabled DIMM system: the PE array, the physical geometry,
/// the calibrated time model and a running cost meter.
///
/// All *functional* operations (burst reads/writes, PE kernels) are provided
/// here; *timing* is charged explicitly by callers via [`PimSystem::charge`]
/// because the correct cost of a step depends on phase-level context
/// (channel parallelism, overlap) that only the collective engine knows.
///
/// # Examples
///
/// ```
/// use pim_sim::{DimmGeometry, PimSystem};
/// use pim_sim::geometry::{EgId, PeId};
///
/// let mut sys = PimSystem::new(DimmGeometry::single_rank());
/// sys.pe_mut(PeId(3)).write(0, &[42; 8]);
/// let burst = sys.read_burst(EgId(0), 0);
/// // Lane 3 contributed byte 42 to every beat.
/// assert_eq!(burst[3], 42);
/// assert_eq!(burst[8 + 3], 42);
/// ```
#[derive(Debug, Clone)]
pub struct PimSystem {
    geometry: DimmGeometry,
    model: TimeModel,
    pes: Vec<Pe>,
    meter: Breakdown,
    /// Attached fault plan, if any (see [`crate::fault`]). `None` keeps
    /// every PE on the direct-store write path.
    fault: Option<Arc<FaultPlan>>,
    /// Mirror of the per-PE verify flags, so boundary checks can skip the
    /// PE scan when verification was never enabled.
    verify: bool,
}

// ---- bank-level burst transport --------------------------------------
//
// A "bank" here is the 8-PE slice of one entangled group (contiguous in
// the PE array). The burst codecs are free functions over such slices so
// that both the whole-system API and the per-cluster [`EgView`]s used by
// the parallel engine share one implementation.
//
// The wire format conversion (raw beat-major order ↔ per-lane words) is
// exactly a domain transfer, so the codecs stage bursts in host order and
// run the word-wise [`transpose8x8`] instead of a per-byte interleave loop.

/// Reads `out.len() / 64` consecutive bursts starting at MRAM `offset`
/// into `out` in raw order.
fn bank_read_bursts(bank: &[Pe], offset: usize, out: &mut [u8]) {
    debug_assert_eq!(bank.len(), LANES);
    debug_assert_eq!(out.len() % BURST_BYTES, 0);
    for (lane, pe) in bank.iter().enumerate() {
        // Stage this lane's words at their host-order positions.
        for (b, block) in out.chunks_exact_mut(BURST_BYTES).enumerate() {
            pe.peek_into(
                offset + b * LANE_BYTES,
                &mut block[lane * LANE_BYTES..(lane + 1) * LANE_BYTES],
            );
        }
    }
    for block in out.chunks_exact_mut(BURST_BYTES) {
        transpose8x8(block); // host order -> raw order
    }
}

/// Writes `data.len() / 64` consecutive raw-order bursts to MRAM `offset`.
fn bank_write_bursts(bank: &mut [Pe], offset: usize, data: &[u8]) {
    debug_assert_eq!(bank.len(), LANES);
    debug_assert_eq!(data.len() % BURST_BYTES, 0);
    let mut host = [0u8; BURST_BYTES];
    for (b, block) in data.chunks_exact(BURST_BYTES).enumerate() {
        host.copy_from_slice(block);
        transpose8x8(&mut host); // raw order -> host order
        for (lane, pe) in bank.iter_mut().enumerate() {
            pe.write(
                offset + b * LANE_BYTES,
                &host[lane * LANE_BYTES..(lane + 1) * LANE_BYTES],
            );
        }
    }
}

/// Reads `row_len` bytes at `offset` from every lane into `out`, one
/// contiguous row per lane (`out[lane*row_len..]`) — the *host-domain*
/// view of a burst run. Because the domain transfer is an involution that
/// cancels between a read and the matching write, the streaming engine can
/// move whole chunks with one memcpy per lane and never materialize the
/// raw beat-major wire format.
fn bank_read_rows(bank: &[Pe], offset: usize, row_len: usize, out: &mut [u8]) {
    debug_assert_eq!(bank.len(), LANES);
    debug_assert_eq!(out.len(), LANES * row_len);
    for (lane, pe) in bank.iter().enumerate() {
        pe.peek_into(offset, &mut out[lane * row_len..(lane + 1) * row_len]);
    }
}

/// Writes per-lane rows at `offset`: lane `d` receives row `perm[d]` —
/// the host-domain equivalent of writing a burst run modulated by the lane
/// permutation `perm` (see [`crate::domain`]'s fusion identity).
fn bank_write_rows(bank: &mut [Pe], offset: usize, row_len: usize, rows: &[u8], perm: &LanePerm) {
    debug_assert_eq!(bank.len(), LANES);
    debug_assert_eq!(rows.len(), LANES * row_len);
    for (lane, pe) in bank.iter_mut().enumerate() {
        let src = perm[lane];
        pe.write(offset, &rows[src * row_len..(src + 1) * row_len]);
    }
}

impl PimSystem {
    /// Creates a system with the given geometry and the default
    /// [`TimeModel::upmem`] calibration.
    pub fn new(geometry: DimmGeometry) -> Self {
        Self::with_model(geometry, TimeModel::upmem())
    }

    /// Creates a system with an explicit time model.
    pub fn with_model(geometry: DimmGeometry, model: TimeModel) -> Self {
        let pes = vec![Pe::new(); geometry.num_pes()];
        Self {
            geometry,
            model,
            pes,
            meter: Breakdown::new(),
            fault: None,
            verify: false,
        }
    }

    /// The system's geometry.
    pub fn geometry(&self) -> &DimmGeometry {
        &self.geometry
    }

    /// The calibrated time model.
    pub fn model(&self) -> &TimeModel {
        &self.model
    }

    /// Shared access to a PE.
    pub fn pe(&self, pe: PeId) -> &Pe {
        &self.pes[pe.index()]
    }

    /// Mutable access to a PE.
    pub fn pe_mut(&mut self, pe: PeId) -> &mut Pe {
        &mut self.pes[pe.index()]
    }

    /// Exclusive access to the whole PE array in PE-index order — the
    /// entry point of the apps' host-kernel fan-out (`pidcomm::par_pes`):
    /// each worker thread mutates a disjoint contiguous sub-slice, so the
    /// loop body gets `&mut Pe` access without any locking.
    pub fn pes_mut(&mut self) -> &mut [Pe] {
        &mut self.pes
    }

    /// Returns the system to its post-construction state — every PE
    /// all-zero ([`Pe::reset`]), the meter cleared — while keeping all
    /// allocations for reuse. Geometry and time model are unchanged. This
    /// is what lets a [`crate::arena::SystemArena`] hand the same
    /// allocation to consecutive benchmark cells with results
    /// byte-identical to a freshly built system.
    pub fn reset(&mut self) {
        for pe in &mut self.pes {
            pe.reset();
        }
        self.meter = Breakdown::new();
    }

    /// The 8-PE slice of one entangled group (PEs of an EG are contiguous
    /// in lane order).
    fn bank(&self, eg: EgId) -> &[Pe] {
        &self.pes[eg.index() * LANES..(eg.index() + 1) * LANES]
    }

    fn bank_mut(&mut self, eg: EgId) -> &mut [Pe] {
        &mut self.pes[eg.index() * LANES..(eg.index() + 1) * LANES]
    }

    // ---- functional bus operations -------------------------------------

    /// Reads one 64-byte burst from entangled group `eg` at MRAM offset
    /// `offset`, in raw (PIM-domain) order: `out[beat*8 + lane]` is byte
    /// `offset + beat` of the PE at `lane`.
    ///
    /// The physical bus always moves whole bursts — there is no way to read
    /// a subset of lanes — which is why communication groups that underuse
    /// an entangled group waste bandwidth (§III-B).
    pub fn read_burst(&self, eg: EgId, offset: usize) -> [u8; BURST_BYTES] {
        let mut out = [0u8; BURST_BYTES];
        bank_read_bursts(self.bank(eg), offset, &mut out);
        out
    }

    /// Writes one 64-byte burst (raw order) to entangled group `eg` at
    /// MRAM offset `offset`.
    pub fn write_burst(&mut self, eg: EgId, offset: usize, block: &[u8; BURST_BYTES]) {
        bank_write_bursts(self.bank_mut(eg), offset, block);
    }

    /// Reads `out.len() / 64` consecutive raw bursts starting at `offset`
    /// into `out` — the batched *wire-format* transport. The streaming
    /// engine itself moves data as host-domain rows
    /// ([`PimSystem::read_rows_into`]); this raw-order run view exists for
    /// tools and tests that need the physical burst layout.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` is not a multiple of 64.
    pub fn read_bursts_into(&self, eg: EgId, offset: usize, out: &mut [u8]) {
        assert_eq!(
            out.len() % BURST_BYTES,
            0,
            "burst runs move whole 64-byte bursts"
        );
        bank_read_bursts(self.bank(eg), offset, out);
    }

    /// Writes `data.len() / 64` consecutive raw bursts starting at
    /// `offset` — the write half of the batched wire-format transport.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of 64.
    pub fn write_bursts(&mut self, eg: EgId, offset: usize, data: &[u8]) {
        assert_eq!(
            data.len() % BURST_BYTES,
            0,
            "burst runs move whole 64-byte bursts"
        );
        bank_write_bursts(self.bank_mut(eg), offset, data);
    }

    /// Reads `row_len` bytes per lane at `offset` into contiguous per-lane
    /// rows — the host-domain view of a `row_len / 8`-burst run. See
    /// [`EgView::read_rows_into`] for the engine-facing variant.
    ///
    /// # Panics
    ///
    /// Panics if `row_len` is not a multiple of 8 or `out.len()` is not
    /// `8 * row_len`.
    pub fn read_rows_into(&self, eg: EgId, offset: usize, row_len: usize, out: &mut [u8]) {
        assert_eq!(row_len % LANE_BYTES, 0, "rows move whole 8-byte words");
        assert_eq!(out.len(), LANES * row_len, "need one row per lane");
        bank_read_rows(self.bank(eg), offset, row_len, out);
    }

    /// Writes per-lane rows at `offset`, lane `d` receiving row `perm[d]`
    /// — the host-domain write half of a modulated burst run.
    ///
    /// # Panics
    ///
    /// Panics if `row_len` is not a multiple of 8 or `rows.len()` is not
    /// `8 * row_len`.
    pub fn write_rows(
        &mut self,
        eg: EgId,
        offset: usize,
        row_len: usize,
        rows: &[u8],
        perm: &LanePerm,
    ) {
        assert_eq!(row_len % LANE_BYTES, 0, "rows move whole 8-byte words");
        assert_eq!(rows.len(), LANES * row_len, "need one row per lane");
        bank_write_rows(self.bank_mut(eg), offset, row_len, rows, perm);
    }

    /// Reads `len` bytes (a multiple of 8) starting at `offset` from every
    /// lane of `eg` as consecutive raw bursts.
    pub fn read_bursts(&self, eg: EgId, offset: usize, len: usize) -> Vec<u8> {
        assert_eq!(
            len % LANE_BYTES,
            0,
            "burst reads move multiples of 8 bytes per lane"
        );
        let mut out = vec![0u8; len / LANE_BYTES * BURST_BYTES];
        bank_read_bursts(self.bank(eg), offset, &mut out);
        out
    }

    /// Splits the PE array into disjoint per-part [`EgView`]s, one per
    /// entry of `parts`. Each view grants exclusive mutable access to the
    /// named entangled groups and can be moved to its own worker thread —
    /// the foundation of cluster-parallel collective execution.
    ///
    /// # Panics
    ///
    /// Panics if an entangled group appears in more than one part (or twice
    /// in one part).
    pub fn split_eg_views(&mut self, parts: &[Vec<EgId>]) -> Vec<EgView<'_>> {
        let geometry = self.geometry;
        let mut banks: Vec<Option<&mut [Pe]>> = self.pes.chunks_mut(LANES).map(Some).collect();
        parts
            .iter()
            .map(|egs| {
                let slices = egs
                    .iter()
                    .map(|eg| {
                        banks[eg.index()]
                            .take()
                            .unwrap_or_else(|| panic!("{eg} claimed by two views"))
                    })
                    .collect();
                EgView {
                    geometry,
                    egs: egs.clone(),
                    banks: slices,
                }
            })
            .collect()
    }

    // ---- metering -------------------------------------------------------

    /// Adds `ns` nanoseconds of cost in category `cat`.
    pub fn charge(&mut self, cat: Category, ns: f64) {
        self.meter.charge(cat, ns);
    }

    /// Current accumulated breakdown.
    pub fn meter(&self) -> Breakdown {
        self.meter
    }

    /// Resets the meter to zero and returns the previous value.
    pub fn take_meter(&mut self) -> Breakdown {
        core::mem::replace(&mut self.meter, Breakdown::new())
    }

    /// Charges a PE kernel: fixed launch overhead (to `Other`) plus the
    /// maximum per-PE execution time (to `Kernel`), since all PEs run in
    /// parallel and the host waits for the slowest.
    pub fn run_kernel(&mut self, max_pe_ns: f64) {
        let launch = self.model.kernel_launch_ns;
        self.charge(Category::Other, launch);
        self.charge(Category::Kernel, max_pe_ns);
    }

    /// Charges a PE-side reorder kernel that streams at most `max_bytes_per_pe`
    /// through each PE's WRAM: launch overhead plus parallel reorder time,
    /// both attributed to PE-side modulation (the paper measured its launch
    /// cost as a minor ~4.5 % overhead, §VIII-D).
    pub fn charge_pe_reorder(&mut self, max_bytes_per_pe: u64) {
        let t = self.model.pe_reorder_time(max_bytes_per_pe) + self.model.kernel_launch_ns;
        self.charge(Category::PeModulation, t);
    }

    /// Total MRAM bytes in use across all PEs (for memory accounting in
    /// tests and benches).
    pub fn total_mram_used(&self) -> usize {
        self.pes.iter().map(Pe::mram_used).sum()
    }

    /// Materializes every PE's MRAM up to `end` bytes (zero-filled).
    /// The collective engine calls this once per invocation with the
    /// buffers' full extent so the streaming loops never pay incremental
    /// reallocation copies; functionally a no-op.
    pub fn reserve_extent_all(&mut self, end: usize) {
        for pe in &mut self.pes {
            pe.reserve_extent(end);
        }
    }

    // ---- fault layer ----------------------------------------------------

    /// Attaches a fault plan: every PE gets a [`FaultCtx`] binding its
    /// flat index to the shared plan, routing all transport writes through
    /// the checked path (see [`crate::fault`]). Replaces any previously
    /// attached plan.
    pub fn attach_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        for (i, pe) in self.pes.iter_mut().enumerate() {
            pe.set_fault_ctx(Some(FaultCtx::new(i as u32, plan.clone())));
        }
        self.fault = Some(plan);
    }

    /// Detaches the fault plan (if any), returning every PE to the
    /// direct-store write path.
    pub fn detach_fault_plan(&mut self) {
        for pe in &mut self.pes {
            pe.set_fault_ctx(None);
        }
        self.fault = None;
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault.as_ref()
    }

    /// Enables or disables read-after-write verification of transport
    /// writes on every PE. Verification charges no modeled time and grows
    /// no MRAM, so a fault-free verified run is bit-identical to an
    /// unverified one.
    pub fn set_verify_writes(&mut self, on: bool) {
        for pe in &mut self.pes {
            pe.set_verify(on);
        }
        self.verify = on;
    }

    /// Whether write verification is currently enabled.
    pub fn verify_writes(&self) -> bool {
        self.verify
    }

    /// Collects the first recorded write corruption across the PE array
    /// (lowest PE index wins — a deterministic choice regardless of how
    /// many threads executed the writes), clearing every PE's record.
    /// Returns `None` immediately when neither a fault plan nor
    /// verification is active.
    pub fn take_corruption(&mut self) -> Option<CorruptionEvent> {
        if self.fault.is_none() && !self.verify {
            return None;
        }
        let mut first = None;
        for pe in &mut self.pes {
            let ev = pe.take_corruption();
            if first.is_none() {
                first = ev;
            }
        }
        first
    }

    /// Drains *every* PE's recorded write corruption into `out`, in PE
    /// order. Unlike [`Self::take_corruption`], nothing is discarded —
    /// run-level supervision needs all events so it can ignore the ones
    /// from already-quarantined PEs without absorbing a healthy PE's
    /// corruption alongside them.
    pub fn take_corruptions(&mut self, out: &mut Vec<CorruptionEvent>) {
        if self.fault.is_none() && !self.verify {
            return;
        }
        for pe in &mut self.pes {
            if let Some(ev) = pe.take_corruption() {
                out.push(ev);
            }
        }
    }

    // ---- iteration checkpoints ------------------------------------------

    /// Snapshots the given MRAM `regions` (shared `(offset, len)` windows,
    /// one set applied to every PE) into `ckpt`, replacing its previous
    /// contents. The capture uses the non-materializing peek path: it
    /// charges no modeled time and grows no MRAM, so taking checkpoints on
    /// a fault-free run perturbs nothing.
    pub fn checkpoint_regions(&self, regions: &[(usize, usize)], ckpt: &mut Checkpoint) {
        ckpt.regions.clear();
        ckpt.regions.extend_from_slice(regions);
        let total: usize = regions.iter().map(|&(_, len)| len).sum();
        ckpt.pes.resize_with(self.geometry.num_pes(), Vec::new);
        for (pe, buf) in self.geometry.pes().zip(&mut ckpt.pes) {
            buf.clear();
            buf.resize(total, 0);
            let mut at = 0;
            for &(offset, len) in regions {
                self.pes[pe.index()].peek_into(offset, &mut buf[at..at + len]);
                at += len;
            }
        }
    }

    /// Restores the regions captured by [`Self::checkpoint_regions`].
    /// This is a host-side rollback outside the fault scope: the PIM
    /// transport is not involved, so neither injection nor verification
    /// applies, and nothing is charged — the caller accounts for the
    /// rollback on its own recovery counters.
    pub fn restore_regions(&mut self, ckpt: &Checkpoint) {
        if ckpt.regions.is_empty() {
            return;
        }
        let fault = self.fault.take();
        if fault.is_some() {
            for pe in &mut self.pes {
                pe.set_fault_ctx(None);
            }
        }
        let verify = self.verify;
        if verify {
            self.set_verify_writes(false);
        }
        for (pe, buf) in self.geometry.pes().zip(&ckpt.pes) {
            let mut at = 0;
            for &(offset, len) in &ckpt.regions {
                self.pes[pe.index()].write(offset, &buf[at..at + len]);
                at += len;
            }
        }
        if verify {
            self.set_verify_writes(true);
        }
        if let Some(fp) = fault {
            self.attach_fault_plan(fp);
        }
    }
}

/// A host-side snapshot of selected MRAM regions across every PE, taken
/// at an iteration boundary so run-level recovery can roll back one
/// iteration instead of one plan attempt (or the whole run). Created
/// empty (or checked out of a [`crate::SystemArena`] pool) and filled by
/// [`PimSystem::checkpoint_regions`]; the buffers are retained across
/// reuse so steady-state checkpointing allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct Checkpoint {
    /// `(offset, len)` windows captured, identical on every PE.
    regions: Vec<(usize, usize)>,
    /// Concatenated window bytes, one buffer per PE in geometry order.
    pes: Vec<Vec<u8>>,
}

impl Checkpoint {
    /// Creates an empty checkpoint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes captured across all PEs — what a rollback moves, and
    /// therefore what the caller charges to its recovery counters.
    pub fn bytes(&self) -> u64 {
        self.pes.iter().map(|b| b.len() as u64).sum()
    }

    /// Whether the checkpoint covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty() || self.bytes() == 0
    }
}

/// Exclusive view over the PEs of a set of entangled groups, created by
/// [`PimSystem::split_eg_views`].
///
/// Entangled groups are addressed by *slot* — their position in the list
/// the view was built from — so engine code that already iterates a
/// cluster's EGs by index needs no lookup. Distinct views cover disjoint
/// EGs and may be used from different threads concurrently.
#[derive(Debug)]
pub struct EgView<'a> {
    geometry: DimmGeometry,
    egs: Vec<EgId>,
    banks: Vec<&'a mut [Pe]>,
}

impl EgView<'_> {
    /// The system geometry.
    pub fn geometry(&self) -> &DimmGeometry {
        &self.geometry
    }

    /// The entangled groups this view covers, in slot order.
    pub fn egs(&self) -> &[EgId] {
        &self.egs
    }

    /// Mutable access to the PE at `lane` of the EG in `slot`.
    pub fn pe_mut(&mut self, slot: usize, lane: usize) -> &mut Pe {
        &mut self.banks[slot][lane]
    }

    /// As [`PimSystem::read_burst`], for the EG in `slot`.
    pub fn read_burst(&self, slot: usize, offset: usize) -> [u8; BURST_BYTES] {
        let mut out = [0u8; BURST_BYTES];
        bank_read_bursts(self.banks[slot], offset, &mut out);
        out
    }

    /// As [`PimSystem::write_burst`], for the EG in `slot`.
    pub fn write_burst(&mut self, slot: usize, offset: usize, block: &[u8; BURST_BYTES]) {
        bank_write_bursts(self.banks[slot], offset, block);
    }

    /// As [`PimSystem::read_bursts_into`], for the EG in `slot`.
    pub fn read_bursts_into(&self, slot: usize, offset: usize, out: &mut [u8]) {
        assert_eq!(
            out.len() % BURST_BYTES,
            0,
            "burst runs move whole 64-byte bursts"
        );
        bank_read_bursts(self.banks[slot], offset, out);
    }

    /// As [`PimSystem::write_bursts`], for the EG in `slot`.
    pub fn write_bursts(&mut self, slot: usize, offset: usize, data: &[u8]) {
        assert_eq!(
            data.len() % BURST_BYTES,
            0,
            "burst runs move whole 64-byte bursts"
        );
        bank_write_bursts(self.banks[slot], offset, data);
    }

    /// As [`PimSystem::read_rows_into`], for the EG in `slot`.
    pub fn read_rows_into(&self, slot: usize, offset: usize, row_len: usize, out: &mut [u8]) {
        assert_eq!(row_len % LANE_BYTES, 0, "rows move whole 8-byte words");
        assert_eq!(out.len(), LANES * row_len, "need one row per lane");
        bank_read_rows(self.banks[slot], offset, row_len, out);
    }

    /// As [`PimSystem::write_rows`], for the EG in `slot`.
    pub fn write_rows(
        &mut self,
        slot: usize,
        offset: usize,
        row_len: usize,
        rows: &[u8],
        perm: &LanePerm,
    ) {
        assert_eq!(row_len % LANE_BYTES, 0, "rows move whole 8-byte words");
        assert_eq!(rows.len(), LANES * row_len, "need one row per lane");
        bank_write_rows(self.banks[slot], offset, row_len, rows, perm);
    }

    /// As [`EgView::write_rows`], but with a *per-lane* destination
    /// offset: lane `d` receives row `perm[d]` at `offsets[d]`. This lets
    /// the engine fuse the phase-C local reorder into the streaming write —
    /// each register lands directly in its final slot instead of an arrival
    /// slot that a later PE kernel would have to fix up.
    pub fn write_rows_at(
        &mut self,
        slot: usize,
        offsets: &[usize; LANES],
        row_len: usize,
        rows: &[u8],
        perm: &LanePerm,
    ) {
        assert_eq!(row_len % LANE_BYTES, 0, "rows move whole 8-byte words");
        assert_eq!(rows.len(), LANES * row_len, "need one row per lane");
        for (lane, pe) in self.banks[slot].iter_mut().enumerate() {
            let src = perm[lane];
            pe.write(offsets[lane], &rows[src * row_len..(src + 1) * row_len]);
        }
    }

    /// Reduces one row run directly out of PE memory: row `d` of `acc`
    /// accumulates, element-wise under `op`/`dtype`, the `row_len` bytes
    /// at `offset` of lane `perm[d]` of the EG in `slot` — the fused form
    /// of "read rows, align with the rotation, vertically reduce" with no
    /// staging copy. Unmaterialized source regions reduce as zeros.
    #[allow(clippy::too_many_arguments)]
    pub fn reduce_rows(
        &self,
        slot: usize,
        offset: usize,
        row_len: usize,
        acc: &mut [u8],
        perm: &LanePerm,
        op: crate::dtype::ReduceKind,
        dtype: crate::dtype::DType,
    ) {
        assert_eq!(row_len % LANE_BYTES, 0, "rows move whole 8-byte words");
        assert_eq!(acc.len(), LANES * row_len, "need one row per lane");
        for (d, accr) in acc.chunks_exact_mut(row_len).enumerate() {
            let pe = &self.banks[slot][perm[d]];
            if let Some(src) = pe.try_slice(offset, row_len) {
                crate::dtype::reduce_bytes(op, dtype, accr, src);
            } else {
                // Slow path: the region is (partly) unmaterialized; stage
                // zero-extended 64-byte pieces on the stack.
                let mut tmp = [0u8; BURST_BYTES];
                for (i, piece) in accr.chunks_mut(BURST_BYTES).enumerate() {
                    pe.peek_into(offset + i * BURST_BYTES, &mut tmp[..piece.len()]);
                    crate::dtype::reduce_bytes(op, dtype, piece, &tmp[..piece.len()]);
                }
            }
        }
    }

    /// Moves one row run directly between entangled groups without a
    /// staging buffer: lane `d` of `dst_slot` receives the `row_len` bytes
    /// at `src_offset` of lane `perm[d]` of `src_slot`, written at
    /// `dst_offsets[d]`. Source and destination regions must be disjoint
    /// when they share a PE.
    pub fn copy_rows(
        &mut self,
        src_slot: usize,
        src_offset: usize,
        dst_slot: usize,
        dst_offsets: &[usize; LANES],
        row_len: usize,
        perm: &LanePerm,
    ) {
        assert_eq!(row_len % LANE_BYTES, 0, "rows move whole 8-byte words");
        if src_slot == dst_slot {
            let bank = &mut *self.banks[src_slot];
            for d in 0..LANES {
                let s = perm[d];
                if s == d {
                    bank[d].copy_within_region(src_offset, dst_offsets[d], row_len);
                } else {
                    let (a, b) = bank.split_at_mut(s.max(d));
                    if s < d {
                        b[0].copy_from(dst_offsets[d], &a[s], src_offset, row_len);
                    } else {
                        a[d].copy_from(dst_offsets[d], &b[0], src_offset, row_len);
                    }
                }
            }
        } else {
            let (lo, hi) = (src_slot.min(dst_slot), src_slot.max(dst_slot));
            let (a, b) = self.banks.split_at_mut(hi);
            let (src_bank, dst_bank) = if src_slot < dst_slot {
                (&*a[lo], &mut *b[0])
            } else {
                (&*b[0], &mut *a[lo])
            };
            for d in 0..LANES {
                dst_bank[d].copy_from(dst_offsets[d], &src_bank[perm[d]], src_offset, row_len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::transpose8x8;

    #[test]
    fn burst_roundtrip() {
        let mut sys = PimSystem::new(DimmGeometry::single_group());
        let block: [u8; 64] = core::array::from_fn(|i| (i * 3 + 1) as u8);
        sys.write_burst(EgId(0), 16, &block);
        assert_eq!(sys.read_burst(EgId(0), 16), block);
    }

    #[test]
    fn burst_raw_order_interleaves_lanes() {
        let mut sys = PimSystem::new(DimmGeometry::single_group());
        // PE at lane 2 holds 8 bytes of 0xAB at offset 0.
        sys.pe_mut(PeId(2)).write(0, &[0xAB; 8]);
        let raw = sys.read_burst(EgId(0), 0);
        for beat in 0..LANES {
            for lane in 0..LANES {
                let expect = if lane == 2 { 0xAB } else { 0 };
                assert_eq!(raw[beat * LANES + lane], expect);
            }
        }
    }

    #[test]
    fn domain_transfer_yields_contiguous_words() {
        let mut sys = PimSystem::new(DimmGeometry::single_group());
        for lane in 0..LANES {
            let pe = sys.geometry().pe_of(EgId(0), lane);
            let word = (lane as u64 + 1) * 0x0101_0101_0101_0101;
            sys.pe_mut(pe).write(0, &word.to_le_bytes());
        }
        let mut block = sys.read_burst(EgId(0), 0).to_vec();
        transpose8x8(&mut block);
        for lane in 0..LANES {
            let w = u64::from_le_bytes(block[lane * 8..lane * 8 + 8].try_into().unwrap());
            assert_eq!(w, (lane as u64 + 1) * 0x0101_0101_0101_0101);
        }
    }

    #[test]
    fn read_bursts_concatenates() {
        let mut sys = PimSystem::new(DimmGeometry::single_group());
        let b0: [u8; 64] = [1; 64];
        let b1: [u8; 64] = [2; 64];
        sys.write_burst(EgId(0), 0, &b0);
        sys.write_burst(EgId(0), 8, &b1);
        let all = sys.read_bursts(EgId(0), 0, 16);
        assert_eq!(&all[..64], &b0[..]);
        assert_eq!(&all[64..], &b1[..]);
    }

    #[test]
    fn burst_runs_match_single_burst_loops() {
        let mut sys = PimSystem::new(DimmGeometry::single_rank());
        for pe in sys.geometry().pes() {
            let data: Vec<u8> = (0..256).map(|i| (pe.0 as usize + i * 7) as u8).collect();
            sys.pe_mut(pe).write(0, &data);
        }
        let eg = EgId(3);
        // Batched read == loop of single reads.
        let mut run = vec![0u8; 4 * BURST_BYTES];
        sys.read_bursts_into(eg, 16, &mut run);
        for b in 0..4 {
            assert_eq!(
                &run[b * BURST_BYTES..(b + 1) * BURST_BYTES],
                &sys.read_burst(eg, 16 + b * LANE_BYTES)[..],
                "burst {b}"
            );
        }
        // Batched write == loop of single writes.
        let mut sys2 = sys.clone();
        sys.write_bursts(EgId(5), 8, &run);
        for b in 0..4 {
            let block: [u8; BURST_BYTES] = run[b * BURST_BYTES..(b + 1) * BURST_BYTES]
                .try_into()
                .unwrap();
            sys2.write_burst(EgId(5), 8 + b * LANE_BYTES, &block);
        }
        for pe in sys.geometry().pes() {
            let n = sys.pe(pe).mram_used().max(sys2.pe(pe).mram_used());
            assert_eq!(sys.pe(pe).peek(0, n), sys2.pe(pe).peek(0, n), "{pe}");
        }
    }

    #[test]
    fn row_transport_equals_burst_transport_with_domain_transfer() {
        // read_rows_into == read_bursts_into + per-block DT, and
        // write_rows(perm) == permute_lanes_raw(perm) + write_bursts —
        // the fusion identity the streaming engine's host-domain transport
        // rests on.
        use crate::domain::{permute_lanes_raw, rotation_within};

        let mut sys = PimSystem::new(DimmGeometry::single_rank());
        for pe in sys.geometry().pes() {
            let data: Vec<u8> = (0..256)
                .map(|i| (pe.0 as usize * 13 + i * 3) as u8)
                .collect();
            sys.pe_mut(pe).write(0, &data);
        }
        let eg = EgId(2);
        let row_len = 32; // 4 bursts
        let mut rows = vec![0u8; LANES * row_len];
        sys.read_rows_into(eg, 8, row_len, &mut rows);

        let mut raw = vec![0u8; 4 * BURST_BYTES];
        sys.read_bursts_into(eg, 8, &mut raw);
        for (w, block) in raw.chunks_exact_mut(BURST_BYTES).enumerate() {
            transpose8x8(block);
            for lane in 0..LANES {
                assert_eq!(
                    &block[lane * 8..lane * 8 + 8],
                    &rows[lane * row_len + w * 8..lane * row_len + (w + 1) * 8],
                    "burst {w} lane {lane}"
                );
            }
        }

        // Write side, with a non-trivial lane permutation. (Re-read: the
        // check above domain-transferred `raw` in place.)
        sys.read_bursts_into(eg, 8, &mut raw);
        let perm = rotation_within(&[0, 2, 4, 6], 1);
        let mut a = sys.clone();
        let mut b = sys.clone();
        a.write_rows(EgId(5), 0, row_len, &rows, &perm);
        for block in raw.chunks_exact_mut(BURST_BYTES) {
            permute_lanes_raw(block, &perm);
        }
        b.write_bursts(EgId(5), 0, &raw);
        for pe in a.geometry().pes() {
            let n = a.pe(pe).mram_used().max(b.pe(pe).mram_used());
            assert_eq!(a.pe(pe).peek(0, n), b.pe(pe).peek(0, n), "{pe}");
        }
    }

    #[test]
    fn split_views_give_disjoint_parallel_access() {
        let mut sys = PimSystem::new(DimmGeometry::single_rank());
        let block: [u8; 64] = core::array::from_fn(|i| i as u8);
        sys.write_burst(EgId(1), 0, &block);
        sys.write_burst(EgId(6), 0, &block);

        let parts = vec![vec![EgId(1), EgId(2)], vec![EgId(6)]];
        let mut views = sys.split_eg_views(&parts);
        let (a, rest) = views.split_at_mut(1);
        let a = &mut a[0];
        let b = &mut rest[0];
        assert_eq!(a.egs(), &[EgId(1), EgId(2)]);
        // Views read what the system wrote and write independently.
        std::thread::scope(|s| {
            s.spawn(|| {
                assert_eq!(a.read_burst(0, 0), block);
                a.write_burst(1, 0, &block);
            });
            s.spawn(|| {
                assert_eq!(b.read_burst(0, 0), block);
            });
        });
        drop(views);
        assert_eq!(sys.read_burst(EgId(2), 0), block);
    }

    #[test]
    #[should_panic(expected = "claimed by two views")]
    fn overlapping_views_rejected() {
        let mut sys = PimSystem::new(DimmGeometry::single_rank());
        let parts = vec![vec![EgId(0)], vec![EgId(0)]];
        let _ = sys.split_eg_views(&parts);
    }

    #[test]
    fn metering_accumulates_and_resets() {
        let mut sys = PimSystem::new(DimmGeometry::single_group());
        sys.charge(Category::PeMemAccess, 7.0);
        sys.run_kernel(100.0);
        let m = sys.meter();
        assert_eq!(m.pe_mem_access, 7.0);
        assert_eq!(m.kernel, 100.0);
        assert!(m.other > 0.0);
        let taken = sys.take_meter();
        assert_eq!(taken.total(), m.total());
        assert_eq!(sys.meter().total(), 0.0);
    }

    #[test]
    fn mram_usage_tracks_writes() {
        let mut sys = PimSystem::new(DimmGeometry::single_group());
        assert_eq!(sys.total_mram_used(), 0);
        sys.pe_mut(PeId(0)).write(0, &[0; 128]);
        assert_eq!(sys.total_mram_used(), 128);
    }

    #[test]
    fn fault_injection_detected_by_write_verification() {
        use crate::fault::{FaultKind, FaultPlan};
        let mut sys = PimSystem::new(DimmGeometry::single_group());
        let plan = Arc::new(FaultPlan::new(11).with_event(FaultKind::BitFlip, 2, 1));
        sys.attach_fault_plan(plan.clone());
        sys.set_verify_writes(true);
        plan.begin_epoch();
        let block: [u8; 64] = core::array::from_fn(|i| i as u8);
        sys.write_burst(EgId(0), 0, &block);
        let ev = sys.take_corruption().expect("flip must be detected");
        assert_eq!(ev.pe, 2);
        assert_eq!(ev.epoch, 1);
        assert_ne!(ev.expected, ev.found);
        assert!(sys.take_corruption().is_none(), "record is cleared");
    }

    #[test]
    fn stuck_pe_drops_writes_but_stays_readable() {
        use crate::fault::FaultPlan;
        let mut sys = PimSystem::new(DimmGeometry::single_group());
        sys.pe_mut(PeId(1)).write(0, &[7u8; 8]);
        sys.attach_fault_plan(Arc::new(FaultPlan::new(0).with_failed_pe(1)));
        sys.pe_mut(PeId(1)).write(0, &[9u8; 8]);
        // The dead DPU's bank is still host-readable, holding stale data.
        assert_eq!(sys.pe(PeId(1)).peek(0, 8), vec![7u8; 8]);
        sys.detach_fault_plan();
        sys.pe_mut(PeId(1)).write(0, &[9u8; 8]);
        assert_eq!(sys.pe(PeId(1)).peek(0, 8), vec![9u8; 8]);
    }

    #[test]
    fn verified_fault_free_writes_are_bit_identical() {
        let mut a = PimSystem::new(DimmGeometry::single_group());
        let mut b = PimSystem::new(DimmGeometry::single_group());
        b.set_verify_writes(true);
        let block: [u8; 64] = core::array::from_fn(|i| (i * 5) as u8);
        a.write_burst(EgId(0), 0, &block);
        b.write_burst(EgId(0), 0, &block);
        for pe in a.geometry().pes() {
            assert_eq!(a.pe(pe).mram_used(), b.pe(pe).mram_used());
            let n = a.pe(pe).mram_used();
            assert_eq!(a.pe(pe).peek(0, n), b.pe(pe).peek(0, n), "{pe}");
        }
        assert!(b.take_corruption().is_none());
    }
}

//! # pidcomm-apps — benchmark applications on the PID-Comm framework
//!
//! The paper's five benchmark applications (§VII), each implemented on the
//! simulated PIM system with real data flowing through the collective
//! library, validated bit-exactly against plain CPU reference
//! implementations, and profiled with the paper's per-primitive + kernel
//! decomposition:
//!
//! * [`mlp`] — 5-layer perceptron, column-partitioned, ReduceScatter
//!   between layers.
//! * [`bfs`] — frontier BFS with AllReduce(Or) on visited bitmaps.
//! * [`cc`] — connected components via min-label AllReduce.
//! * [`gnn`] — 2-D partitioned GNN in both RS&AR and AR&AG variants.
//! * [`dlrm`] — 3-D partitioned recommendation model (AlltoAll /
//!   ReduceScatter / AlltoAll).

// The modeled engine takes no unsafe shortcuts; any future unsafe
// fast path belongs in pim_sim, under simlint's unsafe-audit lint.
#![forbid(unsafe_code)]

pub mod bfs;
pub mod cc;
pub mod cost;
pub mod dlrm;
pub mod gnn;
pub mod mlp;
pub mod profile;

pub use profile::AppProfile;

/// Result of one application run.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRun {
    /// Modeled PIM execution profile.
    pub profile: AppProfile,
    /// Modeled CPU-only reference time (roofline, §VIII-G comparisons).
    pub cpu_ns: f64,
    /// Whether the PIM result matched the CPU reference bit-exactly.
    pub validated: bool,
}

//! Fig. 13: per-application time split into the eight primitives plus the
//! compute kernel, baseline vs PID-Comm.

use pidcomm::OptLevel;
use pidcomm_bench::{apps, header};

fn main() {
    header(
        "Fig. 13",
        "application breakdown by primitive, Base vs Ours (harness-scale datasets)",
        "communication latency largely reduced for all applications; kernel unchanged",
    );
    for case in apps::all_cases() {
        for (label, opt) in [("Base", OptLevel::Baseline), ("Ours", OptLevel::Full)] {
            let run = case.run(1024, opt);
            println!(
                "{:<9} {:<4} {label}: {}",
                case.app,
                case.dataset,
                run.profile.table_row()
            );
        }
    }
}

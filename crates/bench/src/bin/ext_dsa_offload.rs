//! Extension (§IX-B): projecting PID-Comm with an Intel DSA-style
//! accelerator taking over the host's data modulation.
//!
//! The paper argues that a future Data Streaming Accelerator supporting
//! shifts, additions and domain transfers "could fully replace the host
//! with an even higher speedup". We model that by accelerating the host-side
//! per-block operations 4x (a dedicated engine at streaming rate) and
//! keeping the bus untouched, then re-running the Fig. 14 sweep.

use pidcomm::{
    BufferSpec, Communicator, DimMask, HypercubeManager, HypercubeShape, OptLevel, Primitive,
};
use pidcomm_bench::{geomean, header};
use pim_sim::{DimmGeometry, PimSystem, ReduceKind, TimeModel};

fn dsa_model() -> TimeModel {
    let mut m = TimeModel::upmem();
    m.dt_cycles_per_block /= 4.0;
    m.shuffle_cycles_per_block /= 4.0;
    m.reduce_cycles_per_block /= 4.0;
    // The DSA also lifts the streamed-bus ceiling: descriptors are issued
    // back-to-back instead of through the CPU load/store path.
    m.streamed_bus_efficiency = 0.75;
    m
}

fn run(model: TimeModel, prim: Primitive) -> f64 {
    let geom = DimmGeometry::upmem_1024();
    let shape = HypercubeShape::new(vec![32, 32]).unwrap();
    let mask: DimMask = "10".parse().unwrap();
    let b = 32 * 1024;
    let manager = HypercubeManager::new(shape, geom).unwrap();
    let comm = Communicator::new(manager).with_opt(OptLevel::Full);
    let mut sys = PimSystem::with_model(geom, model);
    for pe in geom.pes() {
        sys.pe_mut(pe).write(0, &vec![1u8; b]);
    }
    let spec = BufferSpec::new(0, 2 * b + 64, b);
    let report = match prim {
        Primitive::AlltoAll => comm.all_to_all(&mut sys, &mask, &spec).unwrap(),
        Primitive::ReduceScatter => comm
            .reduce_scatter(&mut sys, &mask, &spec, ReduceKind::Sum)
            .unwrap(),
        Primitive::AllReduce => comm
            .all_reduce(&mut sys, &mask, &spec, ReduceKind::Sum)
            .unwrap(),
        Primitive::AllGather => comm
            .all_gather(&mut sys, &mask, &BufferSpec::new(0, 2 * b + 64, 1024))
            .unwrap(),
        _ => unreachable!(),
    };
    report.throughput_gbps()
}

fn main() {
    header(
        "Extension (§IX-B)",
        "projected PID-Comm throughput with DSA-offloaded modulation, 2-D (32,32)",
        "paper: DSA 'could fully replace the host with an even higher speedup'",
    );
    println!(
        "{:<4} {:>12} {:>12} {:>8}",
        "prim", "host GB/s", "DSA GB/s", "gain"
    );
    let mut gains = Vec::new();
    for prim in [
        Primitive::AlltoAll,
        Primitive::ReduceScatter,
        Primitive::AllReduce,
        Primitive::AllGather,
    ] {
        let host = run(TimeModel::upmem(), prim);
        let dsa = run(dsa_model(), prim);
        gains.push(dsa / host);
        println!(
            "{:<4} {:>12.2} {:>12.2} {:>7.2}x",
            prim.abbrev(),
            host,
            dsa,
            dsa / host
        );
    }
    println!("geomean projected gain: {:.2}x", geomean(&gains));
}

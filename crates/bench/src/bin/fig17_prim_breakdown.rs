//! Fig. 17: execution-time breakdown of AA/RS/AR/AG, baseline vs PID-Comm.

use pidcomm::{OptLevel, Primitive};
use pidcomm_bench::{header, run_primitive, PrimSetup};

fn main() {
    header(
        "Fig. 17",
        "breakdown of four primitives, 32x32 PEs (sizes scaled /128 vs paper's 8MB/PE)",
        "host-mem vanishes with IM; DT vanishes for AA/AG with CM; PE-side modulation is minor",
    );
    let setup = PrimSetup::default_2d(64 * 1024);
    println!(
        "{:<4} {:<5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "prim", "opt", "total", "DT", "hostmod", "hostmem", "pemem", "pemod", "other"
    );
    for prim in [
        Primitive::AlltoAll,
        Primitive::ReduceScatter,
        Primitive::AllReduce,
        Primitive::AllGather,
    ] {
        for opt in [OptLevel::Baseline, OptLevel::Full] {
            let r = run_primitive(&setup, prim, opt);
            let b = &r.breakdown;
            println!(
                "{:<4} {:<5} {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>8.2}ms",
                prim.abbrev(),
                format!("{opt}"),
                b.total() / 1e6,
                b.domain_transfer / 1e6,
                b.host_modulation / 1e6,
                b.host_mem_access / 1e6,
                b.pe_mem_access / 1e6,
                b.pe_modulation / 1e6,
                b.other / 1e6,
            );
        }
    }
}

//! User-defined virtual hypercube shapes.

use core::fmt;

use crate::error::{Error, Result};

/// Shape of a virtual hypercube (§IV-B of the paper).
///
/// Dimension 0 is the `x` axis and is the fastest-varying when nodes are
/// mapped to physical PEs, matching the paper's chip → bank → rank → channel
/// fill order. Every dimension length must be a power of two except the
/// last, which may be arbitrary (it maps to the channel level, the only
/// non-power-of-two level of real systems).
///
/// # Examples
///
/// ```
/// use pidcomm::hypercube::HypercubeShape;
///
/// let shape = HypercubeShape::new(vec![4, 2, 4])?;
/// assert_eq!(shape.num_nodes(), 32);
/// assert_eq!(shape.rank(), 3);
/// # Ok::<(), pidcomm::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HypercubeShape {
    dims: Vec<usize>,
}

impl HypercubeShape {
    /// Creates a shape from dimension lengths (`dims[0]` = x).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] if `dims` is empty, any length is
    /// zero, or a non-last dimension is not a power of two.
    pub fn new(dims: Vec<usize>) -> Result<Self> {
        if dims.is_empty() {
            return Err(Error::InvalidShape("no dimensions".into()));
        }
        for (i, &d) in dims.iter().enumerate() {
            if d == 0 {
                return Err(Error::InvalidShape(format!("dimension {i} has length 0")));
            }
            if i + 1 != dims.len() && !d.is_power_of_two() {
                return Err(Error::InvalidShape(format!(
                    "dimension {i} has non-power-of-two length {d} (only the last dimension may)"
                )));
            }
        }
        Ok(Self { dims })
    }

    /// A one-dimensional hypercube over `n` nodes.
    pub fn linear(n: usize) -> Result<Self> {
        Self::new(vec![n])
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Dimension lengths.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Length of dimension `d`.
    pub fn dim(&self, d: usize) -> usize {
        self.dims[d]
    }

    /// Total node count (product of dimension lengths).
    pub fn num_nodes(&self) -> usize {
        self.dims.iter().product()
    }

    /// Decomposes a linear node index into per-dimension coordinates
    /// (`x` first).
    pub fn coords_of(&self, node: usize) -> Vec<usize> {
        debug_assert!(node < self.num_nodes());
        let mut rem = node;
        self.dims
            .iter()
            .map(|&d| {
                let c = rem % d;
                rem /= d;
                c
            })
            .collect()
    }

    /// Recomposes a linear node index from coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `coords` has the wrong rank or a coordinate is out of
    /// range.
    pub fn node_of(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.rank(), "coordinate rank mismatch");
        let mut node = 0;
        let mut weight = 1;
        for (d, (&c, &len)) in coords.iter().zip(&self.dims).enumerate() {
            assert!(c < len, "coordinate {c} out of range for dimension {d}");
            node += c * weight;
            weight *= len;
        }
        node
    }

    /// The linear-index weight (stride) of dimension `d`.
    pub fn weight(&self, d: usize) -> usize {
        self.dims[..d].iter().product()
    }
}

impl fmt::Display for HypercubeShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_shape() {
        let s = HypercubeShape::new(vec![4, 2, 4]).unwrap();
        assert_eq!(s.num_nodes(), 32);
        assert_eq!(s.dims(), &[4, 2, 4]);
        assert_eq!(format!("{s}"), "[4x2x4]");
    }

    #[test]
    fn last_dim_may_be_non_power_of_two() {
        // 4 channels would be the last dimension on the paper's testbed,
        // but e.g. 3 channels must also be expressible.
        assert!(HypercubeShape::new(vec![8, 8, 3]).is_ok());
        assert!(HypercubeShape::new(vec![8, 3, 8]).is_err());
    }

    #[test]
    fn zero_and_empty_rejected() {
        assert!(HypercubeShape::new(vec![]).is_err());
        assert!(HypercubeShape::new(vec![4, 0]).is_err());
    }

    #[test]
    fn coords_roundtrip() {
        let s = HypercubeShape::new(vec![4, 2, 4]).unwrap();
        for node in 0..s.num_nodes() {
            let c = s.coords_of(node);
            assert_eq!(s.node_of(&c), node);
        }
        // x is fastest.
        assert_eq!(s.coords_of(1), vec![1, 0, 0]);
        assert_eq!(s.coords_of(4), vec![0, 1, 0]);
        assert_eq!(s.coords_of(8), vec![0, 0, 1]);
    }

    #[test]
    fn weights_are_prefix_products() {
        let s = HypercubeShape::new(vec![4, 2, 4]).unwrap();
        assert_eq!(s.weight(0), 1);
        assert_eq!(s.weight(1), 4);
        assert_eq!(s.weight(2), 8);
    }
}

//! Synthetic DLRM workload generation (Criteo-like).
//!
//! The paper evaluates DLRM on the Criteo Kaggle dataset with embedding
//! dimensions 16 and 32. For communication purposes only the *access
//! pattern* matters: a batch of samples, each looking up one row per
//! embedding table, with a skewed row popularity (real click logs are
//! heavily skewed). This module generates such batches deterministically.

use crate::rng::SmallRng;

/// Configuration of a synthetic DLRM embedding workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DlrmConfig {
    /// Number of embedding tables (Criteo has 26 categorical features;
    /// scaled presets use fewer).
    pub num_tables: usize,
    /// Rows per embedding table.
    pub rows_per_table: usize,
    /// Embedding dimension (the paper uses 16 and 32).
    pub embedding_dim: usize,
    /// Samples per batch.
    pub batch_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DlrmConfig {
    /// A Criteo-like preset scaled for simulation, with the paper's
    /// embedding dimension choices (16 or 32).
    ///
    /// # Panics
    ///
    /// Panics if `embedding_dim` is not 16 or 32 (the paper's settings).
    pub fn criteo_like(embedding_dim: usize) -> Self {
        assert!(
            embedding_dim == 16 || embedding_dim == 32,
            "the paper evaluates embedding dims 16 and 32"
        );
        Self {
            num_tables: 8,
            rows_per_table: 1 << 14,
            embedding_dim,
            batch_size: 256,
            seed: 0xc417e0,
        }
    }
}

/// One batch of embedding lookups: `indices[s][t]` is the row of table `t`
/// referenced by sample `s`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupBatch {
    /// Per-sample, per-table row indices.
    pub indices: Vec<Vec<u32>>,
}

/// Generates a deterministic batch with Zipf-like row popularity
/// (approximated by squaring a uniform variate, which concentrates mass on
/// low row indices the way click-log categorical values do).
pub fn generate_batch(cfg: &DlrmConfig) -> LookupBatch {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let indices = (0..cfg.batch_size)
        .map(|_| {
            (0..cfg.num_tables)
                .map(|_| {
                    let u: f64 = rng.gen_f64();
                    ((u * u) * cfg.rows_per_table as f64) as u32 % cfg.rows_per_table as u32
                })
                .collect()
        })
        .collect();
    LookupBatch { indices }
}

/// Deterministic synthetic embedding-table entry: row `r` of table `t`,
/// component `d`, as an i32 (integer embeddings keep the PIM arithmetic
/// exact and validatable).
pub fn embedding_value(table: usize, row: u32, dim: usize) -> i32 {
    let x = (table as u64)
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add((row as u64).wrapping_mul(0xbf58476d1ce4e5b9))
        .wrapping_add(dim as u64);
    // Mix and truncate to a small range so sums stay far from overflow.
    let mixed = (x ^ (x >> 31)).wrapping_mul(0x94d049bb133111eb);
    ((mixed >> 40) as i32 % 1000) - 500
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_is_deterministic_and_in_range() {
        let cfg = DlrmConfig::criteo_like(16);
        let a = generate_batch(&cfg);
        let b = generate_batch(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.indices.len(), cfg.batch_size);
        for sample in &a.indices {
            assert_eq!(sample.len(), cfg.num_tables);
            assert!(sample.iter().all(|&r| (r as usize) < cfg.rows_per_table));
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let cfg = DlrmConfig::criteo_like(32);
        let batch = generate_batch(&cfg);
        let low_half = batch
            .indices
            .iter()
            .flatten()
            .filter(|&&r| (r as usize) < cfg.rows_per_table / 2)
            .count();
        let total = cfg.batch_size * cfg.num_tables;
        assert!(
            low_half * 10 > total * 6,
            "lower half of rows should absorb >60% of lookups ({low_half}/{total})"
        );
    }

    #[test]
    fn embedding_values_are_stable_and_bounded() {
        assert_eq!(embedding_value(1, 2, 3), embedding_value(1, 2, 3));
        assert_ne!(embedding_value(1, 2, 3), embedding_value(1, 2, 4));
        for t in 0..4 {
            for r in 0..100 {
                for d in 0..8 {
                    let v = embedding_value(t, r, d);
                    assert!((-500..500).contains(&v));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "embedding dims 16 and 32")]
    fn unsupported_dim_rejected() {
        let _ = DlrmConfig::criteo_like(64);
    }
}

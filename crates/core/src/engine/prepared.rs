//! Prepared execution: validate and stage once, execute many — and fused
//! multi-step plans with no intermediate host staging.
//!
//! The plan/execute split ([`CollectivePlan`]) hoisted every
//! payload-*independent* derivation out of the iteration loops; this
//! module hoists the payload-*dependent* per-call work that remained:
//!
//! * [`PreparedScatter`] validates a Scatter/Broadcast's `host_in` once
//!   and assembles its per-cluster row image once (through the pitch-based
//!   [`pim_sim::kernels::copy_rows`]), into a buffer that can be pooled in
//!   a [`SystemArena`]. Repeat executes then skip validation and row
//!   re-assembly entirely — the prestaged executors slice the image and
//!   land rows with the exact charging of the unprepared path, so reports
//!   and PE bytes are bit-identical (pinned by `tests/prepared.rs`).
//! * [`FusedPlan`] chains 2+ plans of one geometry into a single execution
//!   unit: step *k*'s output rows sit in PE MRAM exactly where step
//!   *k+1*'s plan reads them, with optional host kernels ([`FusedPlan::
//!   execute_with`] hooks) between steps and **no host staging round-trip
//!   anywhere in the chain**. Each step keeps its own fault epoch, cost
//!   sheet and meter window, so per-step [`CommReport`]s are bit-identical
//!   to issuing the plans separately — fusion removes host-side copies and
//!   per-call overhead, never changes the charged schedule.
//!
//! # Fusion contract
//!
//! [`FusedPlan::new`] enforces the chain shape: at least two steps, all
//! sharing one [`DimmGeometry`]; only the first step may be a host-rooted
//! send (Scatter/Broadcast — staged via [`PreparedScatter`]), only the
//! last may be a host-rooted receive (Gather/Reduce), and every step's
//! buffers must satisfy its own plan validation. Inter-step hooks must
//! derive everything they write from host state plus MRAM the chain's
//! rollback regions cover ([`FusedPlan::with_regions`] adds hook-written
//! regions), so a verified retry of the chain re-runs them
//! deterministically — see [`crate::engine::recovery`].
//!
//! # Lifecycle
//!
//! plan (once) → prepare/fuse (once per payload) → execute ×N. Restage
//! ([`PreparedScatter::restage`]) refreshes the image in place when the
//! payload changes; [`PreparedScatter::retire`] returns the buffer to the
//! arena pool.

use std::sync::Arc;

use pim_sim::geometry::DimmGeometry;
use pim_sim::{PimSystem, SystemArena};

use crate::config::Primitive;
use crate::engine::plan::CollectivePlan;
use crate::engine::{streaming, validate_host_in, Execution};
use crate::error::{Error, Result};
use crate::report::CommReport;

/// A Scatter/Broadcast with its host payload validated and pre-staged
/// into one per-cluster row image. See the module docs.
pub struct PreparedScatter {
    plan: Arc<CollectivePlan>,
    /// The staged row image ([`streaming::stage_rows`] layout).
    rows: Vec<u8>,
    /// Base offset of each cluster's block in `rows`, in plan order.
    offsets: Vec<usize>,
}

impl PreparedScatter {
    fn check_plan(plan: &CollectivePlan) -> Result<()> {
        if !matches!(plan.primitive(), Primitive::Scatter | Primitive::Broadcast) {
            return Err(Error::InvalidHostData(format!(
                "{} takes no host input rows; only Scatter and Broadcast can be prepared",
                plan.primitive()
            )));
        }
        Ok(())
    }

    fn validate(plan: &CollectivePlan, host_in: &[Vec<u8>]) -> Result<()> {
        Self::check_plan(plan)?;
        validate_host_in(
            plan.primitive,
            plan.spec.bytes_per_node,
            plan.n,
            plan.num_groups,
            Some(host_in),
        )
    }

    /// Validates `host_in` against `plan` and stages its rows into a
    /// fresh image.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidHostData`] for non-rooted-send plans or host
    /// buffers of the wrong count/size.
    pub fn stage(plan: Arc<CollectivePlan>, host_in: &[Vec<u8>]) -> Result<Self> {
        Self::validate(&plan, host_in)?;
        let mut rows = vec![0u8; streaming::staged_len(&plan)];
        let offsets = streaming::stage_rows(&plan, host_in, &mut rows);
        Ok(Self {
            plan,
            rows,
            offsets,
        })
    }

    /// As [`PreparedScatter::stage`], with the image checked out of
    /// `arena`'s byte pool instead of freshly allocated — pair with
    /// [`PreparedScatter::retire`] so iteration-heavy sweeps reuse one
    /// allocation across cells.
    ///
    /// # Errors
    ///
    /// As [`PreparedScatter::stage`].
    pub fn stage_in(
        plan: Arc<CollectivePlan>,
        host_in: &[Vec<u8>],
        arena: &mut SystemArena,
    ) -> Result<Self> {
        Self::validate(&plan, host_in)?;
        let mut rows = arena.raw_bytes(streaming::staged_len(&plan));
        let offsets = streaming::stage_rows(&plan, host_in, &mut rows);
        Ok(Self {
            plan,
            rows,
            offsets,
        })
    }

    /// Re-validates and re-stages a new payload into the existing image
    /// (no reallocation): the warm path for loops whose payload changes
    /// every iteration but whose plan does not.
    ///
    /// # Errors
    ///
    /// As [`PreparedScatter::stage`]; on error the image is unchanged.
    pub fn restage(&mut self, host_in: &[Vec<u8>]) -> Result<()> {
        Self::validate(&self.plan, host_in)?;
        self.offsets = streaming::stage_rows(&self.plan, host_in, &mut self.rows);
        Ok(())
    }

    /// The plan this payload was staged for.
    pub fn plan(&self) -> &Arc<CollectivePlan> {
        &self.plan
    }

    /// Executes the prepared collective: identical charging, fault
    /// epoching and row landings to
    /// [`CollectivePlan::execute_with_host`], minus the per-call
    /// validation and row assembly.
    ///
    /// # Errors
    ///
    /// [`Error::ShapeSystemMismatch`] on a geometry mismatch, plus the
    /// fault-layer errors of any execution.
    pub fn execute(&self, sys: &mut PimSystem) -> Result<CommReport> {
        self.run(sys).map(|e| e.report)
    }

    /// Internal execute returning the full [`Execution`] (fused steps
    /// and the recovery tier share it).
    pub(crate) fn run(&self, sys: &mut PimSystem) -> Result<Execution> {
        self.plan.check_geometry(sys)?;
        self.plan.run_with(sys, |sys, sheet| {
            match self.plan.primitive {
                Primitive::Scatter => {
                    streaming::scatter_prestaged(sys, sheet, &self.plan, &self.rows, &self.offsets);
                }
                Primitive::Broadcast => {
                    streaming::broadcast_prestaged(
                        sys,
                        sheet,
                        &self.plan,
                        &self.rows,
                        &self.offsets,
                    );
                }
                _ => unreachable!("stage() admits only rooted sends"),
            }
            None
        })
    }

    /// Rebuilds the original per-group host buffers from the staged image
    /// (its exact inverse) — the degraded-recompute path's input, so
    /// prepared execution never retains a second copy of `host_in`.
    pub(crate) fn unstage(&self) -> Vec<Vec<u8>> {
        streaming::unstage_rows(&self.plan, &self.rows, &self.offsets)
    }

    /// Returns the image buffer to `arena`'s byte pool.
    pub fn retire(self, arena: &mut SystemArena) {
        arena.recycle_bytes(self.rows);
    }
}

/// Outcome of one fused-chain execution: per-step reports (bit-identical
/// to issuing the plans separately) and the final step's host outputs.
#[derive(Debug, Clone)]
pub struct FusedExecution {
    /// One report per step, in chain order.
    pub reports: Vec<CommReport>,
    /// Host output buffers of a trailing Gather/Reduce step.
    pub host_out: Option<Vec<Vec<u8>>>,
}

/// A chain of 2+ collectives over one geometry executed as a unit. See
/// the module docs for the fusion contract.
pub struct FusedPlan {
    steps: Vec<Arc<CollectivePlan>>,
    /// Merged union of every step's touched MRAM windows plus any
    /// hook-written extras — the rollback image a verified retry of the
    /// chain needs.
    regions: Vec<(usize, usize)>,
}

/// Merges a region list into a minimal sorted set of disjoint windows.
fn merge_regions(mut regs: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    regs.retain(|&(_, len)| len > 0);
    regs.sort_unstable();
    let mut merged: Vec<(usize, usize)> = Vec::new();
    for (off, len) in regs {
        match merged.last_mut() {
            Some((m_off, m_len)) if off <= *m_off + *m_len => {
                let end = (off + len).max(*m_off + *m_len);
                *m_len = end - *m_off;
            }
            _ => merged.push((off, len)),
        }
    }
    merged
}

impl FusedPlan {
    /// Fuses `steps` into one chain, validating the fusion contract:
    /// ≥ 2 steps, one shared geometry, host-rooted sends only first,
    /// host-rooted receives only last.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidHostData`] on a contract violation,
    /// [`Error::ShapeSystemMismatch`] on mixed geometries.
    pub fn new(steps: Vec<Arc<CollectivePlan>>) -> Result<Self> {
        Self::with_regions(steps, &[])
    }

    /// As [`FusedPlan::new`], additionally covering `extra` MRAM windows
    /// `(offset, len)` in the chain's rollback image — every region an
    /// inter-step hook writes must be listed here, or a mid-chain retry
    /// would re-run the hook over half-committed state.
    ///
    /// # Errors
    ///
    /// As [`FusedPlan::new`].
    pub fn with_regions(steps: Vec<Arc<CollectivePlan>>, extra: &[(usize, usize)]) -> Result<Self> {
        if steps.len() < 2 {
            return Err(Error::InvalidHostData(format!(
                "a fused plan chains at least 2 steps; got {}",
                steps.len()
            )));
        }
        let geometry = steps[0].geometry;
        for step in &steps[1..] {
            if step.geometry != geometry {
                return Err(Error::ShapeSystemMismatch {
                    nodes: steps[0].num_nodes,
                    pes: step.geometry.num_pes(),
                });
            }
        }
        let last = steps.len() - 1;
        for (k, step) in steps.iter().enumerate() {
            let p = step.primitive();
            if k > 0 && matches!(p, Primitive::Scatter | Primitive::Broadcast) {
                return Err(Error::InvalidHostData(format!(
                    "step {k} is a host-rooted send ({p}); only the first fused step may be"
                )));
            }
            if k < last && matches!(p, Primitive::Gather | Primitive::Reduce) {
                return Err(Error::InvalidHostData(format!(
                    "step {k} is a host-rooted receive ({p}); only the last fused step may be"
                )));
            }
        }
        let mut regions: Vec<(usize, usize)> = steps
            .iter()
            .flat_map(|s| s.touched_regions())
            .chain(extra.iter().copied())
            .collect();
        regions = merge_regions(regions);
        Ok(Self { steps, regions })
    }

    /// The chained plans, in execution order.
    pub fn steps(&self) -> &[Arc<CollectivePlan>] {
        &self.steps
    }

    /// The shared geometry of every step.
    pub fn geometry(&self) -> &DimmGeometry {
        &self.steps[0].geometry
    }

    /// The merged MRAM windows a rollback image of one chain execution
    /// must cover: every step's touched regions plus the hook-written
    /// extras passed to [`FusedPlan::with_regions`]. Apps extend their
    /// iteration checkpoint lists with these.
    pub fn regions(&self) -> &[(usize, usize)] {
        &self.regions
    }

    /// Executes the chain with no prepared input and no inter-step hooks
    /// (the first step must not be host-rooted).
    ///
    /// # Errors
    ///
    /// As [`FusedPlan::execute_with`].
    pub fn execute(&self, sys: &mut PimSystem) -> Result<FusedExecution> {
        self.execute_with(sys, None, |_, _| Ok(()))
    }

    /// Executes the chain: step 0 from its [`PreparedScatter`] when the
    /// chain starts with a rooted send, then each subsequent step directly
    /// over the previous step's in-MRAM output, with `hook(k, sys)` run
    /// between step `k` and `k + 1` (host kernels on the intermediate
    /// state). Each step charges and reports exactly as a standalone
    /// execution of its plan.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidHostData`] when `staged` does not match the first
    /// step; otherwise as the individual plans' execute methods. A failed
    /// step or hook leaves the chain partially executed — the verified
    /// tier ([`crate::engine::recovery`]) rolls back and retries whole
    /// chains.
    pub fn execute_with(
        &self,
        sys: &mut PimSystem,
        staged: Option<&PreparedScatter>,
        mut hook: impl FnMut(usize, &mut PimSystem) -> Result<()>,
    ) -> Result<FusedExecution> {
        self.check_staged(staged)?;
        let mut reports = Vec::with_capacity(self.steps.len());
        let mut host_out = None;
        for (k, step) in self.steps.iter().enumerate() {
            let exec = match (k, staged) {
                (0, Some(prepared)) => prepared.run(sys)?,
                _ => step.run(sys, None)?,
            };
            reports.push(exec.report);
            host_out = exec.host_out;
            if k + 1 < self.steps.len() {
                hook(k, sys)?;
            }
        }
        Ok(FusedExecution { reports, host_out })
    }

    /// Validates that `staged` matches the chain's first step: present
    /// exactly when step 0 is a rooted send, and staged for that very
    /// plan.
    pub(crate) fn check_staged(&self, staged: Option<&PreparedScatter>) -> Result<()> {
        let rooted = matches!(
            self.steps[0].primitive(),
            Primitive::Scatter | Primitive::Broadcast
        );
        match (rooted, staged) {
            (true, None) => Err(Error::InvalidHostData(format!(
                "fused chain starts with {}; pass its PreparedScatter",
                self.steps[0].primitive()
            ))),
            (false, Some(_)) => Err(Error::InvalidHostData(
                "fused chain starts with a non-rooted step; it takes no prepared input".into(),
            )),
            (true, Some(prepared)) if !Arc::ptr_eq(prepared.plan(), &self.steps[0]) => {
                Err(Error::InvalidHostData(
                    "prepared input was staged for a different plan than the chain's first step"
                        .into(),
                ))
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_regions_sorts_merges_and_drops_empties() {
        assert_eq!(
            merge_regions(vec![(100, 50), (0, 10), (140, 20), (5, 0), (8, 4)]),
            vec![(0, 12), (100, 60)]
        );
        assert_eq!(merge_regions(vec![]), vec![]);
        // Adjacent windows coalesce.
        assert_eq!(merge_regions(vec![(0, 8), (8, 8)]), vec![(0, 16)]);
    }
}

//! Multi-instance packing properties (Fig. 9b of the paper): sibling
//! communication groups that share entangled groups must be served by the
//! very same bursts — packing more instances into a call costs no extra
//! bus traffic, and sub-lane groups never waste lanes.

use pidcomm::hypercube::HypercubeManager;
use pidcomm::{BufferSpec, Communicator, HypercubeShape};
use pim_sim::{DimmGeometry, PimSystem, ReduceKind};

fn run_aa(dims: &[usize], mask: &str, geom: DimmGeometry, b: usize) -> pidcomm::CommReport {
    let manager = HypercubeManager::new(HypercubeShape::new(dims.to_vec()).unwrap(), geom).unwrap();
    let comm = Communicator::new(manager);
    let mut sys = PimSystem::new(geom);
    for pe in geom.pes() {
        sys.pe_mut(pe).write(0, &vec![(pe.0 % 256) as u8; b]);
    }
    comm.all_to_all(
        &mut sys,
        &mask.parse().unwrap(),
        &BufferSpec::new(0, 2 * b + 64, b),
    )
    .unwrap()
}

#[test]
fn packed_sub_lane_instances_cost_no_extra_bus_time() {
    // One entangled group, same total payload per PE:
    //   [8] "1"   -> one 8-node instance
    //   [4,2] "10" -> two packed 4-node instances
    //   [2,4] "10" -> four packed 2-node instances
    let geom = DimmGeometry::single_group();
    let b = 512;
    let one = run_aa(&[8], "1", geom, b);
    let two = run_aa(&[4, 2], "10", geom, b);
    let four = run_aa(&[2, 4], "10", geom, b);

    assert_eq!(one.num_groups, 1);
    assert_eq!(two.num_groups, 2);
    assert_eq!(four.num_groups, 4);

    // Bus time identical: the packed instances ride the same bursts.
    for (label, r) in [("2 packed", &two), ("4 packed", &four)] {
        assert!(
            (r.breakdown.pe_mem_access - one.breakdown.pe_mem_access).abs() < 1e-6,
            "{label}: bus time {} vs single-instance {}",
            r.breakdown.pe_mem_access,
            one.breakdown.pe_mem_access
        );
    }
}

#[test]
fn strided_instances_also_pack() {
    // The y-axis of [4,2] occupies strided lanes {l, l+4}; its four
    // instances must still share the entangled group's bursts.
    let geom = DimmGeometry::single_group();
    let b = 512;
    let strided = run_aa(&[4, 2], "01", geom, b);
    let contiguous = run_aa(&[2, 4], "10", geom, b);
    assert_eq!(strided.num_groups, 4);
    assert_eq!(contiguous.num_groups, 4);
    assert!(
        (strided.breakdown.pe_mem_access - contiguous.breakdown.pe_mem_access).abs() < 1e-6,
        "stride must not cost bandwidth: {} vs {}",
        strided.breakdown.pe_mem_access,
        contiguous.breakdown.pe_mem_access
    );
}

#[test]
fn channel_parallel_instances_overlap() {
    // 32 instances spread over 2 channels finish in about half the bus
    // time of the same instances forced through 1 channel.
    let b = 2048;
    let two_ch = run_aa(&[8, 8], "10", DimmGeometry::new(2, 1, 4), b);
    let one_ch = run_aa(&[8, 8], "10", DimmGeometry::new(1, 1, 8), b);
    let ratio = one_ch.breakdown.pe_mem_access / two_ch.breakdown.pe_mem_access;
    assert!(
        (ratio - 2.0).abs() < 0.05,
        "2 channels should halve bus time, got ratio {ratio:.3}"
    );
}

#[test]
fn multi_instance_reduction_results_stay_isolated() {
    // Instances must not leak into each other: each y-column's AllReduce
    // sums only its own members.
    let geom = DimmGeometry::single_group();
    let manager = HypercubeManager::new(HypercubeShape::new(vec![4, 2]).unwrap(), geom).unwrap();
    let comm = Communicator::new(manager);
    let mut sys = PimSystem::new(geom);
    // PE p holds the value p in every u64 slot.
    let b = 4 * 8 * 2; // chunked for groups of 2... use AllReduce over y (n=2)
    for pe in geom.pes() {
        let vals: Vec<u8> = (0..b / 8)
            .flat_map(|_| (pe.0 as u64).to_le_bytes())
            .collect();
        sys.pe_mut(pe).write(0, &vals);
    }
    comm.all_reduce(
        &mut sys,
        &"01".parse().unwrap(),
        &BufferSpec::new(0, 512, 16),
        ReduceKind::Sum,
    )
    .unwrap();
    // y-groups are {p, p+4}: PE 1 must hold 1 + 5 = 6, not any neighbor sum.
    let v = sys.pe_mut(pim_sim::PeId(1)).read(512, 8).to_vec();
    assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 6);
    let v = sys.pe_mut(pim_sim::PeId(3)).read(512, 8).to_vec();
    assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 10); // 3 + 7
}

#[test]
fn full_machine_mask_is_one_instance() {
    let geom = DimmGeometry::new(2, 1, 2); // 32 PEs
    let report = run_aa(&[4, 2, 4], "111", geom, 8 * 32);
    assert_eq!(report.num_groups, 1);
    assert_eq!(report.group_size, 32);
}

//! Physical topology of a PIM-enabled DIMM system.
//!
//! Commodity PIM-enabled DIMMs (e.g. UPMEM) follow the DDR4 hierarchy: a
//! *channel* holds several *ranks*; a rank holds (usually 8) *chips* that
//! operate in unison; each chip holds several *banks*, and a processing
//! element (PE, UPMEM calls them DPUs) sits next to each bank.
//!
//! Because the chips of a rank share the 64-bit channel bus — 8 bits per
//! chip — the 8 banks with the same bank index across the 8 chips of a rank
//! are always accessed together. The paper calls such a set of banks/PEs an
//! **entangled group**; it is the unit of host↔PIM data transfer and the
//! granularity at which [`crate::domain`] transposes data between the host
//! and PIM domains.

use core::fmt;

/// Number of chips per rank, and therefore the number of PEs (lanes) in an
/// entangled group. Fixed at 8 by the DDR4 64-bit bus / 8-bit chip split.
pub const LANES: usize = 8;

/// Size in bytes of one DDR4 burst: 8 beats × 64 bits. Also the unit on
/// which domain transfer operates (8 bytes from each of the 8 lanes).
pub const BURST_BYTES: usize = 64;

/// Bytes contributed by a single lane (PE) to one burst.
pub const LANE_BYTES: usize = BURST_BYTES / LANES;

/// Shape of the simulated PIM-DIMM system.
///
/// The canonical UPMEM evaluation system of the paper is
/// 4 channels × 4 ranks × 8 chips × 8 banks = 1024 PEs
/// ([`DimmGeometry::upmem_1024`]).
///
/// # Examples
///
/// ```
/// use pim_sim::geometry::DimmGeometry;
///
/// let g = DimmGeometry::upmem_1024();
/// assert_eq!(g.num_pes(), 1024);
/// assert_eq!(g.num_entangled_groups(), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimmGeometry {
    channels: usize,
    ranks_per_channel: usize,
    banks_per_chip: usize,
}

impl DimmGeometry {
    /// Creates a geometry with the given number of channels, ranks per
    /// channel and banks per chip. The number of chips per rank is fixed
    /// at [`LANES`].
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(channels: usize, ranks_per_channel: usize, banks_per_chip: usize) -> Self {
        assert!(channels > 0, "geometry needs at least one channel");
        assert!(ranks_per_channel > 0, "geometry needs at least one rank");
        assert!(banks_per_chip > 0, "geometry needs at least one bank");
        Self {
            channels,
            ranks_per_channel,
            banks_per_chip,
        }
    }

    /// The paper's evaluation system: 4 channels × 4 ranks × 8 chips ×
    /// 8 banks = 1024 PEs.
    pub fn upmem_1024() -> Self {
        Self::new(4, 4, 8)
    }

    /// One channel of the paper's system: 1 × 4 × 8 × 8 = 256 PEs.
    pub fn upmem_256() -> Self {
        Self::new(1, 4, 8)
    }

    /// A single rank (64 PEs), the smallest configuration that still has
    /// eight full entangled groups.
    pub fn single_rank() -> Self {
        Self::new(1, 1, 8)
    }

    /// Smallest geometry exercising one entangled group.
    pub fn single_group() -> Self {
        Self::new(1, 1, 1)
    }

    /// Geometry with the given number of PEs laid out following the paper's
    /// fill order (banks, then ranks, then channels), using up to 8 banks,
    /// 4 ranks and as many channels as needed.
    ///
    /// # Panics
    ///
    /// Panics if `pes` is not a positive multiple of [`LANES`].
    pub fn with_pes(pes: usize) -> Self {
        assert!(
            pes > 0 && pes.is_multiple_of(LANES),
            "PE count must be a positive multiple of 8"
        );
        let groups = pes / LANES;
        let banks = groups.min(8);
        let ranks = (groups / banks).clamp(1, 4);
        let channels = groups / (banks * ranks);
        assert_eq!(
            banks * ranks * channels,
            groups,
            "PE count {pes} does not factor into banks×ranks×channels"
        );
        Self::new(channels, ranks, banks)
    }

    /// Number of memory channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of ranks per channel.
    pub fn ranks_per_channel(&self) -> usize {
        self.ranks_per_channel
    }

    /// Number of chips per rank (always [`LANES`]).
    pub fn chips_per_rank(&self) -> usize {
        LANES
    }

    /// Number of banks per chip (= entangled groups per rank).
    pub fn banks_per_chip(&self) -> usize {
        self.banks_per_chip
    }

    /// Total number of PEs in the system.
    pub fn num_pes(&self) -> usize {
        self.channels * self.ranks_per_channel * LANES * self.banks_per_chip
    }

    /// Total number of entangled groups (`num_pes / 8`).
    pub fn num_entangled_groups(&self) -> usize {
        self.num_pes() / LANES
    }

    /// Entangled groups per channel.
    pub fn groups_per_channel(&self) -> usize {
        self.ranks_per_channel * self.banks_per_chip
    }

    /// Returns the linear PE id for a physical coordinate.
    ///
    /// The linear order follows the paper's hypercube fill order (§IV-C):
    /// chip (fastest) → bank → rank → channel (slowest).
    pub fn pe_id(&self, coord: PhysCoord) -> PeId {
        debug_assert!(coord.chip < LANES);
        debug_assert!(coord.bank < self.banks_per_chip);
        debug_assert!(coord.rank < self.ranks_per_channel);
        debug_assert!(coord.channel < self.channels);
        let idx = coord.chip
            + LANES
                * (coord.bank
                    + self.banks_per_chip * (coord.rank + self.ranks_per_channel * coord.channel));
        PeId(idx as u32)
    }

    /// Returns the physical coordinate of a PE id.
    pub fn coord(&self, pe: PeId) -> PhysCoord {
        let mut idx = pe.index();
        let chip = idx % LANES;
        idx /= LANES;
        let bank = idx % self.banks_per_chip;
        idx /= self.banks_per_chip;
        let rank = idx % self.ranks_per_channel;
        idx /= self.ranks_per_channel;
        let channel = idx;
        debug_assert!(channel < self.channels, "PE id out of range");
        PhysCoord {
            channel,
            rank,
            chip,
            bank,
        }
    }

    /// The entangled group a PE belongs to.
    pub fn group_of(&self, pe: PeId) -> EgId {
        EgId((pe.index() / LANES) as u32)
    }

    /// The lane (chip index) of a PE within its entangled group.
    pub fn lane_of(&self, pe: PeId) -> usize {
        pe.index() % LANES
    }

    /// The PE at `lane` of entangled group `eg`.
    pub fn pe_of(&self, eg: EgId, lane: usize) -> PeId {
        debug_assert!(lane < LANES);
        debug_assert!(eg.index() < self.num_entangled_groups());
        PeId((eg.index() * LANES + lane) as u32)
    }

    /// Channel an entangled group lives on. Transfers to distinct channels
    /// proceed in parallel; transfers on the same channel serialize.
    pub fn channel_of_group(&self, eg: EgId) -> usize {
        eg.index() / self.groups_per_channel()
    }

    /// Iterator over all PE ids.
    pub fn pes(&self) -> impl ExactSizeIterator<Item = PeId> {
        (0..self.num_pes() as u32).map(PeId)
    }

    /// Iterator over all entangled group ids.
    pub fn groups(&self) -> impl ExactSizeIterator<Item = EgId> {
        (0..self.num_entangled_groups() as u32).map(EgId)
    }
}

impl Default for DimmGeometry {
    fn default() -> Self {
        Self::upmem_1024()
    }
}

impl fmt::Display for DimmGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}ch x {}rk x {}chip x {}bank ({} PEs)",
            self.channels,
            self.ranks_per_channel,
            LANES,
            self.banks_per_chip,
            self.num_pes()
        )
    }
}

/// Identifier of a processing element (DPU), linear in the paper's
/// chip → bank → rank → channel fill order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PeId(pub u32);

impl PeId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PE{:04}", self.0)
    }
}

/// Identifier of an entangled group (8 PEs across the chips of a rank that
/// share a bank index), linear in bank → rank → channel order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EgId(pub u32);

impl EgId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EG{:03}", self.0)
    }
}

/// Physical coordinate of a PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PhysCoord {
    /// Memory channel index.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Chip within the rank (the lane of the entangled group).
    pub chip: usize,
    /// Bank within the chip.
    pub bank: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upmem_1024_counts() {
        let g = DimmGeometry::upmem_1024();
        assert_eq!(g.num_pes(), 1024);
        assert_eq!(g.num_entangled_groups(), 128);
        assert_eq!(g.groups_per_channel(), 32);
        assert_eq!(g.chips_per_rank(), 8);
    }

    #[test]
    fn pe_id_roundtrip() {
        let g = DimmGeometry::new(2, 3, 5);
        for pe in g.pes() {
            let c = g.coord(pe);
            assert_eq!(g.pe_id(c), pe);
        }
    }

    #[test]
    fn fill_order_is_chip_bank_rank_channel() {
        let g = DimmGeometry::new(2, 2, 2);
        // PE 0 and PE 1 differ only in chip.
        assert_eq!(g.coord(PeId(0)).chip, 0);
        assert_eq!(g.coord(PeId(1)).chip, 1);
        // After 8 chips the bank advances.
        assert_eq!(g.coord(PeId(8)).bank, 1);
        assert_eq!(g.coord(PeId(8)).chip, 0);
        // After all banks the rank advances.
        assert_eq!(g.coord(PeId(16)).rank, 1);
        // After all ranks the channel advances.
        assert_eq!(g.coord(PeId(32)).channel, 1);
    }

    #[test]
    fn entangled_group_membership() {
        let g = DimmGeometry::upmem_1024();
        let pe = PeId(17);
        let eg = g.group_of(pe);
        assert_eq!(eg.index(), 2);
        assert_eq!(g.lane_of(pe), 1);
        assert_eq!(g.pe_of(eg, 1), pe);
        // All lanes of a group share channel, rank and bank, differing in chip.
        let c0 = g.coord(g.pe_of(eg, 0));
        for lane in 1..LANES {
            let c = g.coord(g.pe_of(eg, lane));
            assert_eq!(c.channel, c0.channel);
            assert_eq!(c.rank, c0.rank);
            assert_eq!(c.bank, c0.bank);
            assert_eq!(c.chip, lane);
        }
    }

    #[test]
    fn channel_of_group_partitions_evenly() {
        let g = DimmGeometry::upmem_1024();
        let mut counts = vec![0usize; g.channels()];
        for eg in g.groups() {
            counts[g.channel_of_group(eg)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 32));
    }

    #[test]
    fn with_pes_round_trips_paper_sizes() {
        for pes in [64, 128, 256, 512, 1024] {
            let g = DimmGeometry::with_pes(pes);
            assert_eq!(g.num_pes(), pes, "geometry for {pes} PEs");
        }
        assert_eq!(DimmGeometry::with_pes(1024), DimmGeometry::upmem_1024());
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn with_pes_rejects_unaligned() {
        let _ = DimmGeometry::with_pes(12);
    }

    #[test]
    fn display_formats() {
        let g = DimmGeometry::upmem_1024();
        assert_eq!(format!("{g}"), "4ch x 4rk x 8chip x 8bank (1024 PEs)");
        assert_eq!(format!("{}", PeId(3)), "PE0003");
        assert_eq!(format!("{}", EgId(3)), "EG003");
    }
}

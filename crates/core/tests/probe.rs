//! Ad-hoc throughput probe used while calibrating the time model.
//! Run with `cargo test -p pidcomm --test probe -- --nocapture --ignored`.

use pidcomm::hypercube::HypercubeManager;
use pidcomm::{BufferSpec, Communicator, DimMask, HypercubeShape, OptLevel};
use pim_sim::{DimmGeometry, PimSystem, ReduceKind};

#[test]
#[ignore = "calibration probe, not a correctness test"]
fn primitive_throughputs() {
    let geom = DimmGeometry::upmem_1024();
    let shape = HypercubeShape::new(vec![32, 32]).unwrap();
    let mask: DimMask = "10".parse().unwrap();
    let b = 32 * 512; // bytes per node for chunked primitives (16 KiB)

    for prim in ["AA", "RS", "AR", "AG", "Sc", "Ga", "Re", "Br"] {
        let mut line = format!("{prim}:");
        for opt in OptLevel::ALL {
            let manager = HypercubeManager::new(shape.clone(), geom).unwrap();
            let comm = Communicator::new(manager).with_opt(opt);
            let mut sys = PimSystem::new(geom);
            for pe in geom.pes() {
                sys.pe_mut(pe).write(0, &vec![1u8; b]);
            }
            let spec = BufferSpec::new(0, 2 * b, b);
            let small = BufferSpec::new(0, 2 * b, 512);
            let groups = 32usize;
            let report = match prim {
                "AA" => comm.all_to_all(&mut sys, &mask, &spec).unwrap(),
                "RS" => comm
                    .reduce_scatter(&mut sys, &mask, &spec, ReduceKind::Sum)
                    .unwrap(),
                "AR" => comm
                    .all_reduce(&mut sys, &mask, &spec, ReduceKind::Sum)
                    .unwrap(),
                "AG" => comm.all_gather(&mut sys, &mask, &small).unwrap(),
                "Sc" => {
                    let host: Vec<Vec<u8>> = vec![vec![7u8; 32 * 512]; groups];
                    comm.scatter(&mut sys, &mask, &small, &host).unwrap()
                }
                "Ga" => comm.gather(&mut sys, &mask, &small).unwrap().0,
                "Re" => {
                    comm.reduce(&mut sys, &mask, &spec, ReduceKind::Sum)
                        .unwrap()
                        .0
                }
                "Br" => {
                    let host: Vec<Vec<u8>> = vec![vec![7u8; 512]; groups];
                    comm.broadcast(&mut sys, &mask, &small, &host).unwrap()
                }
                _ => unreachable!(),
            };
            line.push_str(&format!("  {opt}={:.2}GB/s", report.throughput_gbps()));
        }
        println!("{line}");
    }
}

// L1 good: reads, comparisons and struct-literal fields never trip the
// cost-sheet lint; only mutations must go through the charge helpers.
pub fn inspect(sheet: &CostSheet) -> u64 {
    let snapshot = Tally { dt_blocks: sheet.dt_blocks, mpi_ns: 0 };
    if sheet.dt_blocks == 0 {
        return snapshot.dt_blocks + sheet.stream_bytes;
    }
    sheet.dt_blocks
}

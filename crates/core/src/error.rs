//! Error type of the PID-Comm library.

use core::fmt;

/// Errors returned by PID-Comm operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A hypercube shape was invalid (empty, zero-length dimension, or a
    /// non-power-of-two length in a dimension other than the last).
    InvalidShape(String),
    /// A dimension mask string was malformed or did not match the shape.
    InvalidMask(String),
    /// The hypercube does not match the PE count of the target system.
    ShapeSystemMismatch {
        /// Nodes in the hypercube.
        nodes: usize,
        /// PEs in the system.
        pes: usize,
    },
    /// A buffer size or offset failed a primitive's alignment requirements.
    InvalidBuffer(String),
    /// Host-side buffers passed to a rooted primitive did not match the
    /// number of communication groups or their sizes.
    InvalidHostData(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidShape(msg) => write!(f, "invalid hypercube shape: {msg}"),
            Error::InvalidMask(msg) => write!(f, "invalid dimension mask: {msg}"),
            Error::ShapeSystemMismatch { nodes, pes } => write!(
                f,
                "hypercube has {nodes} nodes but the system has {pes} PEs"
            ),
            Error::InvalidBuffer(msg) => write!(f, "invalid buffer: {msg}"),
            Error::InvalidHostData(msg) => write!(f, "invalid host data: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias used throughout the crate.
pub type Result<T> = core::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::ShapeSystemMismatch { nodes: 32, pes: 64 };
        assert_eq!(
            format!("{e}"),
            "hypercube has 32 nodes but the system has 64 PEs"
        );
        assert!(format!("{}", Error::InvalidShape("x".into())).contains("invalid hypercube shape"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<Error>();
    }
}

//! Per-application execution profiling.
//!
//! Applications accumulate one [`AppProfile`] per run: modeled time split
//! by communication primitive plus PE kernel time — exactly the
//! decomposition of the paper's Fig. 13 — along with the full cost-category
//! breakdown used for Fig. 4.

use pidcomm::{CommReport, Primitive};
use pim_sim::Breakdown;

/// Accumulated profile of one application run.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Application name.
    pub name: String,
    /// Dataset / configuration label.
    pub dataset: String,
    /// Modeled time per primitive, indexed by [`Primitive::ALL`] order.
    pub per_primitive: [f64; 8],
    /// Modeled PE kernel time (including launch overheads).
    pub kernel_ns: f64,
    /// Full cost-category breakdown of all communication.
    pub comm: Breakdown,
}

impl AppProfile {
    /// Creates an empty profile.
    pub fn new(name: impl Into<String>, dataset: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            dataset: dataset.into(),
            per_primitive: [0.0; 8],
            kernel_ns: 0.0,
            comm: Breakdown::new(),
        }
    }

    /// Records one collective call.
    pub fn record(&mut self, report: &CommReport) {
        let idx = Primitive::ALL
            .iter()
            .position(|&p| p == report.primitive)
            .expect("primitive in ALL");
        self.per_primitive[idx] += report.time_ns();
        self.comm += report.breakdown;
    }

    /// Records a PE kernel invocation (launch + parallel execution).
    pub fn record_kernel(&mut self, ns: f64) {
        self.kernel_ns += ns;
    }

    /// Total communication time across all primitives.
    pub fn comm_ns(&self) -> f64 {
        self.per_primitive.iter().sum()
    }

    /// Total modeled run time (communication + kernels).
    pub fn total_ns(&self) -> f64 {
        self.comm_ns() + self.kernel_ns
    }

    /// Time recorded for one primitive.
    pub fn primitive_ns(&self, p: Primitive) -> f64 {
        let idx = Primitive::ALL.iter().position(|&q| q == p).unwrap();
        self.per_primitive[idx]
    }

    /// Formats the Fig. 13-style row: per-primitive shares plus kernel.
    pub fn table_row(&self) -> String {
        let mut s = format!(
            "{:<12} {:<8} total {:>9.2} ms |",
            self.name,
            self.dataset,
            self.total_ns() / 1e6
        );
        for (i, p) in Primitive::ALL.iter().enumerate() {
            if self.per_primitive[i] > 0.0 {
                s.push_str(&format!(
                    " {} {:.2}ms",
                    p.abbrev(),
                    self.per_primitive[i] / 1e6
                ));
            }
        }
        s.push_str(&format!(" | kernel {:.2}ms", self.kernel_ns / 1e6));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidcomm::OptLevel;
    use pim_sim::Category;

    fn report(p: Primitive, ns: f64) -> CommReport {
        let mut b = Breakdown::new();
        b.charge(Category::PeMemAccess, ns);
        CommReport {
            primitive: p,
            opt: OptLevel::Full,
            breakdown: b,
            bytes_in: 1,
            bytes_out: 1,
            group_size: 8,
            num_groups: 1,
        }
    }

    #[test]
    fn accumulates_per_primitive() {
        let mut prof = AppProfile::new("test", "ds");
        prof.record(&report(Primitive::AlltoAll, 10.0));
        prof.record(&report(Primitive::AlltoAll, 5.0));
        prof.record(&report(Primitive::Reduce, 2.0));
        prof.record_kernel(100.0);
        assert_eq!(prof.primitive_ns(Primitive::AlltoAll), 15.0);
        assert_eq!(prof.primitive_ns(Primitive::Reduce), 2.0);
        assert_eq!(prof.comm_ns(), 17.0);
        assert_eq!(prof.total_ns(), 117.0);
        assert!(prof.table_row().contains("AA"));
    }
}

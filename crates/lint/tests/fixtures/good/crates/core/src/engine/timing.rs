// L3a good: modeled time comes from the meter, never the host clock.
pub fn modeled_span(before: &Meter, sys: &PimSystem) -> f64 {
    sys.meter().since(before).total_ns()
}

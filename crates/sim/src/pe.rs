//! Per-PE state: MRAM, WRAM bookkeeping and local reorder kernels.
//!
//! Each bank of a PIM-enabled DIMM has a processing element (UPMEM: DPU)
//! with direct access to its 64 MB bank (MRAM) through a small scratchpad
//! (WRAM). PEs cannot see each other's banks — all inter-PE traffic goes
//! through the host — but they *can* rearrange their own data, which is what
//! the paper's *PE-assisted reordering* exploits (§V-A1).
//!
//! Because all inter-PE traffic lands through [`Pe::write`] (burst lanes,
//! row transfers and host scatters alike), that method doubles as the
//! chokepoint of the fault layer ([`crate::fault`]): an installed
//! [`crate::fault::FaultCtx`] lets a seeded plan corrupt or drop landing
//! writes, and write verification read-after-write checks each landing
//! against its intended FNV digest. Both are branch-on-`Option`/`bool`
//! disabled by default, leaving the hot path untouched.

use crate::fault::{self, CorruptionEvent, FaultCtx, WriteFault};

/// WRAM scratchpad size of an UPMEM DPU in bytes.
pub const WRAM_BYTES: usize = 64 * 1024;

/// MRAM capacity of an UPMEM DPU in bytes. The simulator allocates lazily,
/// but refuses accesses beyond this bound.
pub const MRAM_CAPACITY: usize = 64 * 1024 * 1024;

/// Allocation granule of the paged MRAM backing store: the rounding unit
/// of zero-on-first-touch materialization. Power of two, [`MRAM_CAPACITY`]
/// is a multiple of it, and it is deliberately small — segments are
/// variable-length *runs* of pages, so a dense span still materializes as
/// one contiguous segment no matter the page size, while a small granule
/// keeps sparse islands (DLRM embedding shards, small ReduceScatter
/// outputs) from zero-filling memory they never touch.
pub const PAGE_BYTES: usize = 4 * 1024;

/// One contiguous, page-aligned run of materialized MRAM.
///
/// Segments are whole pages, non-overlapping and sorted by `start`. An
/// access that spans several segments (or the gaps between them) merges
/// everything it touches into one segment, so dense streaming converges on
/// a single extent while sparse access patterns keep small isolated
/// islands.
#[derive(Debug, Clone)]
struct Segment {
    start: usize,
    data: Vec<u8>,
}

impl Segment {
    fn end(&self) -> usize {
        self.start + self.data.len()
    }
}

/// One processing element and its bank.
///
/// MRAM is backed by a *paged* store: fixed power-of-two pages
/// ([`PAGE_BYTES`]) are materialized zero-filled on first touch, so
/// simulating 1024 PEs costs memory proportional to the pages actually
/// used — and sparse access patterns (DLRM embedding tables) never pay for
/// zeroing the untouched space in between. Reads of never-written regions
/// observe zeros, like freshly initialized DRAM in the functional model.
///
/// Accesses that stay inside one materialized segment borrow it directly
/// (the contiguous-extent fast path: dense streaming loops still get
/// single-memcpy rows); accesses that straddle segments or gaps first
/// coalesce the touched pages into one segment.
///
/// Reorder kernels reuse a per-PE scratch buffer (the WRAM stand-in), so
/// steady-state collectives run without per-call heap allocation.
#[derive(Debug, Clone, Default)]
pub struct Pe {
    /// Materialized page runs, sorted by `start`, non-overlapping.
    segs: Vec<Segment>,
    /// High-water mark of bytes touched through the growing accessors —
    /// the seed's `mram.len()` semantics, now decoupled from allocation.
    extent: usize,
    /// Reusable staging buffer for the reorder kernels. Capacity grows to
    /// the largest region ever permuted and is then reused; never read
    /// outside a single kernel invocation.
    scratch: Vec<u8>,
    /// Handle on the system's fault plan, if one is attached. `None` (the
    /// default) keeps [`Pe::write`] on the direct store path.
    fault: Option<FaultCtx>,
    /// Read-after-write verification of transport writes. Off by default.
    verify: bool,
    /// First verification mismatch observed on this PE, awaiting
    /// collection at an execute boundary. Boxed: the common case is empty.
    corruption: Option<Box<CorruptionEvent>>,
}

#[inline]
fn check_capacity(end: usize) {
    assert!(
        end <= MRAM_CAPACITY,
        "MRAM access at {end} exceeds 64 MiB bank"
    );
}

impl Pe {
    /// Creates a PE with empty (all-zero) MRAM.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of MRAM bytes touched so far (high-water mark of all growing
    /// accesses, independent of how many pages back it).
    pub fn mram_used(&self) -> usize {
        self.extent
    }

    /// Number of MRAM bytes actually materialized (allocated pages). For a
    /// sparse access pattern this is far below [`Pe::mram_used`].
    pub fn mram_resident(&self) -> usize {
        self.segs.iter().map(|s| s.data.len()).sum()
    }

    /// Returns the PE to the freshly-initialized all-zero state while
    /// keeping its allocations — materialized segments are zero-filled in
    /// place and the reorder scratch keeps its capacity — so a pooled PE
    /// can be reused across runs without allocator traffic (the
    /// [`crate::arena::SystemArena`] path). Functionally indistinguishable
    /// from [`Pe::new`]: every subsequent read observes zeros and
    /// [`Pe::mram_used`] restarts at 0. Only [`Pe::mram_resident`] betrays
    /// the recycling, which no modeled cost depends on.
    pub fn reset(&mut self) {
        for s in &mut self.segs {
            s.data.fill(0);
        }
        self.extent = 0;
        self.corruption = None;
    }

    /// Index of the segment containing `[offset, offset + len)` in full,
    /// if one exists — the contiguous fast path.
    #[inline]
    fn seg_covering(&self, offset: usize, len: usize) -> Option<usize> {
        // Segment starts and ends are both strictly increasing, so the
        // first segment ending after `offset` is the only candidate.
        let i = self.segs.partition_point(|s| s.end() <= offset);
        match self.segs.get(i) {
            Some(s) if s.start <= offset && s.end() >= offset + len => Some(i),
            _ => None,
        }
    }

    /// Materializes a single segment covering `[offset, offset + len)`
    /// (page-aligned, zero-filled where no data existed) and returns its
    /// index. Merges every existing segment the page span touches *or
    /// abuts*: folding in adjacent segments is what lets sequential
    /// streaming — even when individual writes land exactly on page
    /// boundaries — converge to one contiguous segment instead of one
    /// segment per page.
    fn ensure_span(&mut self, offset: usize, len: usize) -> usize {
        debug_assert!(len > 0);
        check_capacity(offset + len);
        let p0 = offset & !(PAGE_BYTES - 1);
        let p1 = (offset + len).next_multiple_of(PAGE_BYTES);

        // First segment overlapping or ending exactly at p0 (adjacency).
        let i = self.segs.partition_point(|s| s.end() < p0);
        if let Some(s) = self.segs.get(i) {
            if s.start <= p0 && s.end() >= p1 {
                return i; // fast path: already covered
            }
        }
        // All segments intersecting [p0, p1) or starting exactly at p1.
        let mut k = i;
        while k < self.segs.len() && self.segs[k].start <= p1 {
            k += 1;
        }
        let first_start = self.segs.get(i).map(|s| s.start);
        let new_start = match first_start {
            Some(s) if s < p0 => s,
            _ => p0,
        };
        let new_end = p1.max(if k > i { self.segs[k - 1].end() } else { 0 });

        if first_start == Some(new_start) {
            // The span begins inside (or right after) segment `i`: grow it
            // in place — Vec::resize grows capacity geometrically, so
            // sequential streaming pays amortized O(1) per byte — then
            // fold in the rest.
            let seg = &mut self.segs[i];
            seg.data.resize(new_end - new_start, 0);
            for s in self.segs.drain(i + 1..k).collect::<Vec<_>>() {
                let at = s.start - new_start;
                self.segs[i].data[at..at + s.data.len()].copy_from_slice(&s.data);
            }
        } else {
            // Fresh segment: exact-sized, no reserve-hint capacity — a
            // sparse island must stay as small as its pages (growth, if it
            // ever happens, goes through the amortized in-place path).
            let mut data = vec![0u8; new_end - new_start];
            for s in self.segs.drain(i..k) {
                let at = s.start - new_start;
                data[at..at + s.data.len()].copy_from_slice(&s.data);
            }
            self.segs.insert(
                i,
                Segment {
                    start: new_start,
                    data,
                },
            );
        }
        i
    }

    /// Reads `len` bytes at `offset`.
    pub fn read(&mut self, offset: usize, len: usize) -> &[u8] {
        check_capacity(offset + len);
        self.extent = self.extent.max(offset + len);
        if len == 0 {
            return &[];
        }
        let i = self.ensure_span(offset, len);
        let s = &self.segs[i];
        &s.data[offset - s.start..offset - s.start + len]
    }

    /// Copies `len` bytes at `offset` into `dst`.
    pub fn read_into(&mut self, offset: usize, dst: &mut [u8]) {
        let src = self.read(offset, dst.len());
        dst.copy_from_slice(src);
    }

    /// Copies the bytes at `offset` into `dst` without materializing
    /// anything: unmaterialized regions read as zeros, exactly like
    /// [`Pe::read`], but through `&self` — so read-only metering and
    /// parallel readers need no exclusive access.
    ///
    /// # Panics
    ///
    /// Panics if the access would exceed [`MRAM_CAPACITY`].
    pub fn peek_into(&self, offset: usize, dst: &mut [u8]) {
        let end = offset + dst.len();
        check_capacity(end);
        if let Some(i) = self.seg_covering(offset, dst.len()) {
            let s = &self.segs[i];
            dst.copy_from_slice(&s.data[offset - s.start..offset - s.start + dst.len()]);
            return;
        }
        dst.fill(0);
        let mut i = self.segs.partition_point(|s| s.end() <= offset);
        while i < self.segs.len() && self.segs[i].start < end {
            let s = &self.segs[i];
            let lo = s.start.max(offset);
            let hi = s.end().min(end);
            dst[lo - offset..hi - offset].copy_from_slice(&s.data[lo - s.start..hi - s.start]);
            i += 1;
        }
    }

    /// Returns `len` bytes at `offset` as a fresh vector without growing
    /// MRAM (untouched regions read as zeros). `&self` counterpart of
    /// `read(..).to_vec()`.
    pub fn peek(&self, offset: usize, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.peek_into(offset, &mut out);
        out
    }

    /// Borrows `len` bytes at `offset` if the region is already
    /// materialized in one segment, `None` otherwise. Zero-copy fast path
    /// for readers that can fall back to [`Pe::peek_into`].
    pub fn try_slice(&self, offset: usize, len: usize) -> Option<&[u8]> {
        let i = self.seg_covering(offset, len)?;
        let s = &self.segs[i];
        Some(&s.data[offset - s.start..offset - s.start + len])
    }

    /// Validates that accesses up to `end` bytes would be in bounds,
    /// without materializing (zero-filling) anything. With the paged
    /// store this is otherwise a no-op — in-place segment growth is
    /// amortized by `Vec`'s geometric resizing, and pre-reserving
    /// capacity for the full extent would defeat sparse paging (a small
    /// island would carry the whole hinted extent's capacity). Kept so
    /// callers can bound a collective's extent up front.
    ///
    /// # Panics
    ///
    /// Panics if `end` exceeds [`MRAM_CAPACITY`].
    pub fn reserve_extent(&mut self, end: usize) {
        check_capacity(end);
    }

    /// Writes `src` at `offset`.
    ///
    /// This is the landing point of every host-mediated transport (burst
    /// lanes, row transfers, host scatters). With a fault context or write
    /// verification installed (see [`Pe::set_fault_ctx`] /
    /// [`Pe::set_verify`]) the write takes the checked transport path;
    /// otherwise it is the direct store it has always been.
    pub fn write(&mut self, offset: usize, src: &[u8]) {
        if self.fault.is_some() || self.verify {
            self.write_checked(offset, src);
        } else {
            self.slice_mut(offset, src.len()).copy_from_slice(src);
        }
    }

    /// The checked transport path: drops the write if this PE is stuck in
    /// the current epoch, applies any scheduled fault to the landed bytes,
    /// and — when verification is on — read-after-write compares FNV
    /// digests, recording the first mismatch for collection at the next
    /// execute boundary. With no fault scheduled this lands exactly the
    /// bytes the direct path would (verification reads back via the
    /// non-materializing peek, so extent and paging are untouched by it).
    fn write_checked(&mut self, offset: usize, src: &[u8]) {
        let len = src.len();
        let (stuck, injected, pe_id, epoch) = match &self.fault {
            Some(ctx) => {
                let stuck = ctx.plan.pe_stuck(ctx.pe);
                let injected = if stuck {
                    None
                } else {
                    ctx.plan.write_fault(ctx.pe, offset, len)
                };
                (stuck, injected, ctx.pe, ctx.plan.epoch())
            }
            None => (false, None, u32::MAX, 0),
        };
        if !stuck {
            self.slice_mut(offset, len).copy_from_slice(src);
            match injected {
                Some(WriteFault::BitFlip { bit }) => {
                    self.slice_mut(offset + bit / 8, 1)[0] ^= 1 << (bit % 8);
                }
                Some(WriteFault::RowCorrupt { word, mask }) => {
                    let w = self.slice_mut(offset + word * 8, 8);
                    for (b, m) in w.iter_mut().zip(mask.to_le_bytes()) {
                        *b ^= m;
                    }
                }
                None => {}
            }
        }
        if self.verify {
            let expected = fault::fnv1a(src);
            let mut tmp = core::mem::take(&mut self.scratch);
            tmp.clear();
            tmp.resize(len, 0);
            self.peek_into(offset, &mut tmp);
            let found = fault::fnv1a(&tmp);
            self.scratch = tmp;
            if found != expected && self.corruption.is_none() {
                self.corruption = Some(Box::new(CorruptionEvent {
                    pe: pe_id,
                    offset,
                    len,
                    expected,
                    found,
                    epoch,
                }));
            }
        }
    }

    /// Installs (or clears) this PE's handle on the system fault plan.
    /// Installed for every PE at once by `PimSystem::attach_fault_plan`.
    pub fn set_fault_ctx(&mut self, ctx: Option<FaultCtx>) {
        self.fault = ctx;
    }

    /// Enables or disables read-after-write verification of transport
    /// writes. Verification never charges modeled time and never grows
    /// MRAM, so enabling it leaves both modeled costs and the data image
    /// bit-identical on a fault-free run.
    pub fn set_verify(&mut self, on: bool) {
        self.verify = on;
    }

    /// Takes the first recorded write-verification mismatch, if any.
    pub fn take_corruption(&mut self) -> Option<CorruptionEvent> {
        self.corruption.take().map(|b| *b)
    }

    /// Copies `len` bytes from another PE's MRAM (`src` at `src_offset`)
    /// to `dst_offset` — the host-mediated PE-to-PE move, without staging
    /// through an intermediate buffer. Untouched source regions read as
    /// zeros, matching [`Pe::peek_into`]. Under an active fault context or
    /// verification the move stages through scratch and lands via the
    /// checked transport path, so PE-to-PE traffic is subject to the same
    /// injection and verification as every other landing.
    pub fn copy_from(&mut self, dst_offset: usize, src: &Pe, src_offset: usize, len: usize) {
        if self.fault.is_some() || self.verify {
            let mut tmp = core::mem::take(&mut self.scratch);
            tmp.clear();
            tmp.resize(len, 0);
            src.peek_into(src_offset, &mut tmp);
            self.write_checked(dst_offset, &tmp);
            self.scratch = tmp;
            return;
        }
        let dst = self.slice_mut(dst_offset, len);
        src.peek_into(src_offset, dst);
    }

    /// Copies `len` bytes from `src_offset` to `dst_offset` within this
    /// PE's MRAM. The regions must not overlap.
    pub fn copy_within_region(&mut self, src_offset: usize, dst_offset: usize, len: usize) {
        debug_assert!(
            src_offset + len <= dst_offset || dst_offset + len <= src_offset,
            "overlapping intra-PE copy"
        );
        check_capacity(src_offset.max(dst_offset) + len);
        if len == 0 {
            self.extent = self.extent.max(src_offset.max(dst_offset));
            return;
        }
        self.extent = self.extent.max(src_offset + len);
        let lo = src_offset.min(dst_offset);
        let hi = src_offset.max(dst_offset) + len;
        if let Some(i) = self.seg_covering(lo, hi - lo) {
            // Both regions live in one segment: a single in-place copy.
            let s = &mut self.segs[i];
            let base = s.start;
            s.data.copy_within(
                src_offset - base..src_offset - base + len,
                dst_offset - base,
            );
            self.extent = self.extent.max(dst_offset + len);
            return;
        }
        // The regions live in different segments (or partly in gaps):
        // stage through the reusable scratch buffer instead of merging
        // everything in between, which would defeat sparse paging for
        // distant copies.
        let mut tmp = core::mem::take(&mut self.scratch);
        tmp.clear();
        tmp.resize(len, 0);
        self.peek_into(src_offset, &mut tmp);
        self.write(dst_offset, &tmp);
        self.scratch = tmp;
    }

    /// Mutable view of `len` bytes at `offset`.
    pub fn slice_mut(&mut self, offset: usize, len: usize) -> &mut [u8] {
        check_capacity(offset + len);
        self.extent = self.extent.max(offset + len);
        if len == 0 {
            return &mut [];
        }
        let i = self.ensure_span(offset, len);
        let s = &mut self.segs[i];
        let at = offset - s.start;
        &mut s.data[at..at + len]
    }

    /// Debug-only validity check: `perm` must be a permutation of
    /// `0..count`.
    #[cfg(debug_assertions)]
    fn check_permutation(perm: &[usize], count: usize) {
        let mut seen = vec![false; count];
        for &src in perm {
            assert!(src < count, "permutation index {src} out of range");
            assert!(!seen[src], "duplicate permutation index {src}");
            seen[src] = true;
        }
    }

    /// Recognizes a permutation that rotates equal-sized parts uniformly:
    /// returns `(part_len, rot)` such that
    /// `perm[j] == (j % part_len + rot) % part_len + (j / part_len) * part_len`.
    /// The phase-A tables of the collective engine always have this form,
    /// and rotating in place halves the memory traffic of the generic
    /// staged permutation.
    fn as_part_rotation(perm: &[usize]) -> Option<(usize, usize)> {
        let count = perm.len();
        'candidates: for q in (1..=count).filter(|&q| count.is_multiple_of(q)) {
            let rot = perm[0];
            if rot >= q {
                continue;
            }
            for (j, &p) in perm.iter().enumerate() {
                if p != (j % q + rot) % q + (j / q) * q {
                    continue 'candidates;
                }
            }
            return Some((q, rot));
        }
        None
    }

    /// Local reorder kernel: treats `[offset, offset + count*block) ` as
    /// `count` blocks of `block` bytes and rearranges them so that the block
    /// at destination slot `d` is the block previously at slot `perm[d]`.
    ///
    /// This runs *inside* the PE (through WRAM), so the host never sees the
    /// data; callers charge [`crate::cost::Category::PeModulation`] time.
    /// Allocation-free in steady state: part-wise rotations (the engine's
    /// phase-A tables) run as in-place slice rotations; anything else is
    /// staged through the PE's reusable scratch buffer.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != count`; in debug builds additionally if
    /// `perm` is not a permutation of `0..count`.
    pub fn permute_blocks(&mut self, offset: usize, block: usize, count: usize, perm: &[usize]) {
        assert_eq!(perm.len(), count, "permutation length mismatch");
        #[cfg(debug_assertions)]
        Self::check_permutation(perm, count);
        let len = block * count;
        check_capacity(offset + len);
        self.extent = self.extent.max(offset + len);
        if len == 0 {
            return;
        }
        let i = self.ensure_span(offset, len);
        let Pe { segs, scratch, .. } = self;
        let s = &mut segs[i];
        let at = offset - s.start;
        let region = &mut s.data[at..at + len];
        if let Some((part, rot)) = Self::as_part_rotation(perm) {
            if rot == 0 {
                return;
            }
            for part_region in region.chunks_exact_mut(part * block) {
                part_region.rotate_left(rot * block);
            }
            return;
        }
        scratch.clear();
        scratch.extend_from_slice(region);
        for (dst, &src) in perm.iter().enumerate() {
            region[dst * block..(dst + 1) * block]
                .copy_from_slice(&scratch[src * block..(src + 1) * block]);
        }
    }

    // ---- typed views (the `crate::kernels` entry points) ---------------
    //
    // Decodes borrow the materialized segment directly (`Pe::read`) and
    // encodes write straight into it (`Pe::slice_mut`), so app kernels
    // move typed lanes in and out of MRAM without intermediate `Vec`s.
    // Untouched regions decode as zeros, exactly like `Pe::read`.
    //
    // These views model *PE-local compute* (the DPU operating on its own
    // bank), not host-mediated transport, so they are deliberately outside
    // the fault layer's injection and verification scope — the fault model
    // covers the communication substrate, not app arithmetic.

    /// Decodes `dst.len()` little-endian `i32`s starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the access would exceed [`MRAM_CAPACITY`].
    pub fn read_i32s(&mut self, offset: usize, dst: &mut [i32]) {
        let src = self.read(offset, dst.len() * 4);
        crate::kernels::decode_i32(src, dst);
    }

    /// Encodes `src` as little-endian `i32`s starting at `offset`,
    /// directly into the backing segment.
    ///
    /// # Panics
    ///
    /// Panics if the access would exceed [`MRAM_CAPACITY`].
    pub fn write_i32s(&mut self, offset: usize, src: &[i32]) {
        let dst = self.slice_mut(offset, src.len() * 4);
        crate::kernels::encode_i32(src, dst);
    }

    /// Decodes `dst.len()` little-endian `u32`s starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the access would exceed [`MRAM_CAPACITY`].
    pub fn read_u32s(&mut self, offset: usize, dst: &mut [u32]) {
        let src = self.read(offset, dst.len() * 4);
        crate::kernels::decode_u32(src, dst);
    }

    /// Encodes `src` as little-endian `u32`s starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the access would exceed [`MRAM_CAPACITY`].
    pub fn write_u32s(&mut self, offset: usize, src: &[u32]) {
        let dst = self.slice_mut(offset, src.len() * 4);
        crate::kernels::encode_u32(src, dst);
    }

    /// Sign-extending decode of `dst.len()` elements of width
    /// `dtype.size_bytes()` (1/2/4) starting at `offset` — the narrow
    /// typed view of [`crate::kernels::decode_sext`].
    ///
    /// # Panics
    ///
    /// Panics if the access would exceed [`MRAM_CAPACITY`] or `dtype` is
    /// wider than 4 bytes.
    pub fn read_sext(&mut self, offset: usize, dtype: crate::DType, dst: &mut [i32]) {
        let src = self.read(offset, dst.len() * dtype.size_bytes());
        crate::kernels::decode_sext(dtype, src, dst);
    }

    /// Truncating encode of `src` to elements of width
    /// `dtype.size_bytes()` (1/2/4) starting at `offset` — the narrow
    /// typed view of [`crate::kernels::encode_trunc`].
    ///
    /// # Panics
    ///
    /// Panics if the access would exceed [`MRAM_CAPACITY`] or `dtype` is
    /// wider than 4 bytes.
    pub fn write_trunc(&mut self, offset: usize, dtype: crate::DType, src: &[i32]) {
        let dst = self.slice_mut(offset, src.len() * dtype.size_bytes());
        crate::kernels::encode_trunc(dtype, src, dst);
    }

    /// Local rotation kernel: rotates `count` blocks of `block` bytes left
    /// by `rot` slots (the block at slot `(d + rot) % count` moves to slot
    /// `d`). Implemented as an in-place slice rotation — no permutation
    /// table, no staging copy.
    pub fn rotate_blocks(&mut self, offset: usize, block: usize, count: usize, rot: usize) {
        if count == 0 {
            return;
        }
        let rot = rot % count;
        let len = block * count;
        check_capacity(offset + len);
        self.extent = self.extent.max(offset + len);
        if rot == 0 || len == 0 {
            return;
        }
        let region = self.slice_mut(offset, len);
        region.rotate_left(rot * block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_of_untouched_mram_are_zero() {
        let mut pe = Pe::new();
        assert_eq!(pe.read(100, 4), &[0, 0, 0, 0]);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut pe = Pe::new();
        pe.write(8, &[1, 2, 3]);
        assert_eq!(pe.read(8, 3), &[1, 2, 3]);
        assert_eq!(pe.mram_used(), 11);
    }

    #[test]
    fn peek_does_not_grow_mram() {
        let mut pe = Pe::new();
        pe.write(0, &[9, 8]);
        let used = pe.mram_used();
        assert_eq!(pe.peek(0, 4), vec![9, 8, 0, 0]);
        assert_eq!(pe.peek(100, 3), vec![0, 0, 0]);
        assert_eq!(pe.mram_used(), used, "peek must not grow MRAM");
        // peek matches read for any region.
        let via_read = pe.read(60, 8).to_vec();
        assert_eq!(pe.peek(60, 8), via_read);
    }

    #[test]
    #[should_panic(expected = "exceeds 64 MiB")]
    fn peek_respects_capacity() {
        let pe = Pe::new();
        let mut buf = [0u8; 2];
        pe.peek_into(MRAM_CAPACITY - 1, &mut buf);
    }

    #[test]
    fn sparse_writes_stay_sparse() {
        let mut pe = Pe::new();
        // Two islands tens of MiB apart: only their pages materialize.
        pe.write(0, &[1u8; 100]);
        pe.write(48 * 1024 * 1024, &[2u8; 100]);
        assert_eq!(pe.mram_used(), 48 * 1024 * 1024 + 100);
        assert!(
            pe.mram_resident() <= 2 * PAGE_BYTES,
            "resident {} should be two pages",
            pe.mram_resident()
        );
        // The gap reads as zeros.
        assert_eq!(pe.peek(24 * 1024 * 1024, 4), vec![0; 4]);
        assert_eq!(pe.read(48 * 1024 * 1024, 3), &[2, 2, 2]);
    }

    #[test]
    fn page_straddling_access_merges_segments() {
        let mut pe = Pe::new();
        pe.write(0, &[1u8; 16]);
        pe.write(3 * PAGE_BYTES, &[2u8; 16]);
        // A read spanning both islands and the gap coalesces them.
        let img = pe.read(0, 3 * PAGE_BYTES + 16).to_vec();
        assert_eq!(&img[..16], &[1u8; 16]);
        assert!(img[16..3 * PAGE_BYTES].iter().all(|&b| b == 0));
        assert_eq!(&img[3 * PAGE_BYTES..], &[2u8; 16]);
        assert_eq!(pe.mram_resident(), 4 * PAGE_BYTES);
    }

    #[test]
    fn rotate_blocks_left() {
        let mut pe = Pe::new();
        pe.write(0, &[0u8, 0, 1, 1, 2, 2, 3, 3]);
        pe.rotate_blocks(0, 2, 4, 1);
        // Slot d receives old slot (d+1)%4.
        assert_eq!(pe.read(0, 8), &[1, 1, 2, 2, 3, 3, 0, 0]);
    }

    #[test]
    fn rotate_by_count_is_identity() {
        let mut pe = Pe::new();
        let data: Vec<u8> = (0..24).collect();
        pe.write(0, &data);
        pe.rotate_blocks(0, 4, 6, 6);
        assert_eq!(pe.read(0, 24), &data[..]);
    }

    #[test]
    fn rotate_matches_equivalent_permutation() {
        // rotate_blocks(rot) must equal permute_blocks with
        // perm[d] = (d + rot) % count — the table the seed implementation
        // built explicitly.
        for count in [1usize, 2, 3, 5, 8] {
            for rot in 0..count + 2 {
                let data: Vec<u8> = (0..(count * 4) as u8).collect();
                let mut a = Pe::new();
                a.write(0, &data);
                a.rotate_blocks(0, 4, count, rot);
                let mut b = Pe::new();
                b.write(0, &data);
                let perm: Vec<usize> = (0..count).map(|d| (d + rot) % count).collect();
                b.permute_blocks(0, 4, count, &perm);
                assert_eq!(a.read(0, count * 4), b.read(0, count * 4), "{count}/{rot}");
            }
        }
    }

    #[test]
    fn permute_blocks_rotation_fast_path_matches_generic() {
        // Every permutation — part rotations (fast path) and arbitrary
        // tables (scratch path) — must produce the mapping
        // out[d] = in[perm[d]].
        let perms: Vec<Vec<usize>> = vec![
            vec![0, 1, 2, 3, 4, 5], // identity
            vec![2, 3, 4, 5, 0, 1], // single-part rotation
            vec![1, 2, 0, 4, 5, 3], // two parts of 3, rot 1
            vec![5, 4, 3, 2, 1, 0], // reversal (generic)
            vec![1, 0, 3, 2, 5, 4], // pairwise swap = parts of 2 rot 1
            vec![3, 1, 4, 0, 5, 2], // arbitrary (generic)
        ];
        for perm in perms {
            let data: Vec<u8> = (0..48).collect();
            let mut pe = Pe::new();
            pe.write(0, &data);
            pe.permute_blocks(0, 8, 6, &perm);
            let got = pe.read(0, 48).to_vec();
            for (d, &s) in perm.iter().enumerate() {
                assert_eq!(
                    &got[d * 8..(d + 1) * 8],
                    &data[s * 8..(s + 1) * 8],
                    "perm {perm:?} slot {d}"
                );
            }
        }
    }

    #[test]
    fn permute_blocks_applies_mapping() {
        let mut pe = Pe::new();
        pe.write(0, &[10, 20, 30]);
        pe.permute_blocks(0, 1, 3, &[2, 0, 1]);
        assert_eq!(pe.read(0, 3), &[30, 10, 20]);
    }

    #[test]
    fn permute_blocks_is_reusable_across_sizes() {
        // The scratch buffer must not leak state between invocations of
        // different sizes.
        let mut pe = Pe::new();
        pe.write(0, &[1, 2, 3, 4, 5, 6, 7, 8]);
        pe.permute_blocks(0, 2, 4, &[3, 2, 1, 0]);
        assert_eq!(pe.read(0, 8), &[7, 8, 5, 6, 3, 4, 1, 2]);
        pe.permute_blocks(0, 1, 2, &[1, 0]);
        assert_eq!(pe.read(0, 2), &[8, 7]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate permutation index")]
    fn permute_rejects_non_permutation() {
        let mut pe = Pe::new();
        pe.permute_blocks(0, 1, 2, &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "exceeds 64 MiB")]
    fn mram_capacity_enforced() {
        let mut pe = Pe::new();
        pe.write(MRAM_CAPACITY, &[1]);
    }

    #[test]
    fn page_aligned_streaming_converges_to_one_segment() {
        // Sequential writes that land exactly on page boundaries (the
        // burst path's 8-byte stream crosses them this way) must extend
        // the existing segment, not leave one segment per page.
        let mut pe = Pe::new();
        for off in (0..4 * PAGE_BYTES).step_by(64) {
            pe.write(off, &[0xABu8; 64]);
        }
        assert!(
            pe.try_slice(0, 4 * PAGE_BYTES).is_some(),
            "adjacent page runs must coalesce"
        );
        // Backward adjacency coalesces too.
        let mut pe = Pe::new();
        pe.write(PAGE_BYTES, &[1u8; 8]);
        pe.write(0, &[2u8; 8]);
        assert!(pe.try_slice(0, PAGE_BYTES + 8).is_some());
    }

    #[test]
    fn copy_within_region_across_segments() {
        let mut pe = Pe::new();
        pe.write(0, &[7u8; 32]);
        // Destination pages away from the source: staged, not merged.
        pe.copy_within_region(0, 10 * PAGE_BYTES, 32);
        assert_eq!(pe.peek(10 * PAGE_BYTES, 32), vec![7u8; 32]);
        assert!(pe.mram_resident() <= 2 * PAGE_BYTES);
        // Reverse direction, partly unmaterialized source -> zeros.
        pe.copy_within_region(20 * PAGE_BYTES, 64, 16);
        assert_eq!(pe.peek(64, 16), vec![0u8; 16]);
    }

    #[test]
    fn try_slice_requires_one_segment() {
        let mut pe = Pe::new();
        pe.write(0, &[1u8; 8]);
        pe.write(5 * PAGE_BYTES, &[2u8; 8]);
        assert!(pe.try_slice(0, 8).is_some());
        assert!(pe.try_slice(0, 2 * PAGE_BYTES).is_none());
        assert!(pe.try_slice(PAGE_BYTES, 8).is_none());
    }
}

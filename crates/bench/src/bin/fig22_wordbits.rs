//! Fig. 22: word-width sensitivity (INT8/16/32) on the GNN benchmarks.

use pidcomm::OptLevel;
use pidcomm_apps::gnn::{run_gnn, GnnConfig, GnnVariant};
use pidcomm_bench::{apps, header};
use pim_sim::DType;

fn main() {
    header(
        "Fig. 22",
        "GNN with INT8/16/32 elements, Base vs Ours",
        "speedup largest for INT8 (cross-domain modulation applies to RS/AR; paper: 1.64x geomean)",
    );
    println!(
        "{:<10} {:<4} {:<6} {:>10} {:>10} {:>8} {:>9} {:>12}",
        "variant", "ds", "dtype", "base ms", "ours ms", "speedup", "comm-spd", "ours DT ms"
    );
    for (variant, vl) in [(GnnVariant::RsAr, "RS&AR"), (GnnVariant::ArAg, "AR&AG")] {
        for (graph, ds) in [(apps::pm(), "PM"), (apps::rd(), "RD")] {
            for dtype in [DType::I8, DType::I16, DType::I32] {
                let mk = |opt| GnnConfig {
                    threads: 0,
                    pes: 1024,
                    feature_dim: 32,
                    layers: 3,
                    variant,
                    opt,
                    dtype,
                };
                let base = run_gnn(&mk(OptLevel::Baseline), graph).unwrap();
                let ours = run_gnn(&mk(OptLevel::Full), graph).unwrap();
                println!(
                    "{:<10} {:<4} {:<6} {:>10.2} {:>10.2} {:>7.2}x {:>8.2}x {:>12.3}",
                    vl,
                    ds,
                    format!("{dtype}"),
                    base.profile.total_ns() / 1e6,
                    ours.profile.total_ns() / 1e6,
                    base.profile.total_ns() / ours.profile.total_ns(),
                    base.profile.comm_ns() / ours.profile.comm_ns(),
                    ours.profile.comm.domain_transfer / 1e6,
                );
            }
        }
    }
}

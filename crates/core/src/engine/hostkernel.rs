//! Host-kernel executor: deterministic fan-out for the apps' per-PE
//! functional loops.
//!
//! The benchmark applications interleave collectives with *host-side
//! kernels*: loops that, for every PE, read that PE's buffers, compute the
//! functional result the device kernel would produce (MLP partial vectors,
//! BFS/CC frontier expansion, GNN aggregation, DLRM index routing) and
//! write it back. Those loops are embarrassingly parallel — each iteration
//! touches exactly one PE plus shared *immutable* inputs — but until now
//! they ran single-threaded on the caller even when the surrounding sweep
//! cell held an unused engine budget.
//!
//! [`par_pes`] and [`par_chunks`] close that gap with the same discipline
//! as the engine's cluster fan-out ([`super::parallel`]):
//!
//! * **Budget**: callers pass the same `threads` knob they hand to
//!   [`crate::Communicator::with_threads`] (`0` = auto via
//!   [`super::parallel::auto_threads`], `1` = the serial reference path),
//!   so sweep-level, engine-level and host-kernel parallelism split one
//!   machine budget instead of oversubscribing it.
//! * **Determinism**: work items are statically partitioned into
//!   contiguous chunks, every item gets exclusive `&mut` access to its own
//!   slot, and every per-item result lands in a pre-sized slot returned in
//!   item order. Nothing about the outcome — bytes written, results
//!   returned, or any fold over them — can depend on scheduling, which is
//!   what keeps app outputs and modeled times byte-identical to serial at
//!   any thread count (pinned by `app_sweep_determinism`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use super::parallel::effective_threads;

/// Renders a caught panic payload as a human-readable message (the `&str`
/// / `String` payloads `panic!` produces; anything else is opaque).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Re-raises contained item panics with context: how many items were
/// poisoned and where the first one (in item order, not completion order)
/// failed. Called only after every worker has drained its items, so one
/// bad item no longer tears down the siblings mid-flight.
fn report_poisoned(what: &str, mut poisoned: Vec<(usize, String)>) -> ! {
    poisoned.sort_by_key(|(i, _)| *i);
    let (i, msg) = &poisoned[0];
    panic!(
        "{count} {what}(s) panicked; first at {what} {i}: {msg}",
        count = poisoned.len()
    );
}

/// Runs `f(i, &mut items[i])` for every item — one item per PE in the
/// apps' use — on up to `threads` scoped worker threads, and returns the
/// per-item results in item order.
///
/// `threads` follows the engine convention: `0` = auto
/// ([`crate::auto_threads`]), `1` = serial on the caller's thread, and the
/// count is clamped to the number of items. The closure must only mutate
/// its own item (plus closure-local state); shared captures are `&`-borrowed
/// and therefore immutable, so parallel runs are byte-identical to serial.
///
/// Typical app shape, with `sys` a [`pim_sim::PimSystem`]:
///
/// ```
/// use pim_sim::{DimmGeometry, PimSystem};
///
/// let mut sys = PimSystem::new(DimmGeometry::single_rank());
/// let kernel_ns = pidcomm::par_pes(sys.pes_mut(), 0, |pid, pe| {
///     pe.write(0, &(pid as u64).to_le_bytes());
///     16.0 * pid as f64 // modeled per-PE kernel time
/// });
/// let max = kernel_ns.iter().fold(0.0f64, |a, &b| a.max(b));
/// assert_eq!(max, 16.0 * 63.0);
/// ```
pub fn par_pes<T: Send, R: Send>(
    items: &mut [T],
    threads: usize,
    f: impl Fn(usize, &mut T) -> R + Sync,
) -> Vec<R> {
    par_pes_with(items, threads, || (), |(), i, x| f(i, x))
}

/// As [`par_pes`], but each worker thread owns a private scratch value
/// built by `init()` when the worker starts and passed to every item that
/// worker executes — so small per-item buffers (a BFS visited-bitmap
/// clone, a CC label staging array, a DLRM routing chunk) are allocated
/// once per *worker* instead of once per *PE*, which is what keeps clone
/// traffic flat as PE counts grow.
///
/// The determinism contract extends the [`par_pes`] one: the scratch must
/// not let one item's *result* depend on which items ran before it on the
/// same worker. A buffer that every item fully overwrites (`fill`,
/// `copy_from_slice`, `clear` + `resize`) qualifies; an accumulator does
/// not. The serial path (`threads == 1`) threads a single scratch value
/// through every item in order, so it exercises maximal reuse — any
/// contract violation diverges from it at the first parallel run (pinned
/// by `app_sweep_determinism`).
///
/// # Panics
///
/// A panicking item is *contained*: the worker catches it, rebuilds its
/// scratch, and finishes its remaining items, so siblings complete and
/// every healthy item's effect lands. Only once all workers drain does
/// the call re-panic — with the poisoned item count and the first failing
/// item index and message — instead of an anonymous unwind from whichever
/// worker died first.
pub fn par_pes_with<T: Send, R: Send, S>(
    items: &mut [T],
    threads: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &mut T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    let t = effective_threads(threads, n);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let poisoned: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    if t <= 1 || n <= 1 {
        let mut scratch = init();
        for (i, (x, slot)) in items.iter_mut().zip(slots.iter_mut()).enumerate() {
            match catch_unwind(AssertUnwindSafe(|| f(&mut scratch, i, x))) {
                Ok(r) => *slot = Some(r),
                Err(payload) => {
                    poisoned
                        .lock()
                        .unwrap()
                        .push((i, panic_message(payload.as_ref())));
                    // The unwind may have left the scratch mid-update;
                    // rebuild it so later items see clean state.
                    scratch = init();
                }
            }
        }
    } else {
        let chunk = n.div_ceil(t);
        std::thread::scope(|s| {
            for (ci, (part, out)) in items
                .chunks_mut(chunk)
                .zip(slots.chunks_mut(chunk))
                .enumerate()
            {
                let f = &f;
                let init = &init;
                let poisoned = &poisoned;
                s.spawn(move || {
                    let mut scratch = init();
                    for (j, (x, slot)) in part.iter_mut().zip(out.iter_mut()).enumerate() {
                        let i = ci * chunk + j;
                        match catch_unwind(AssertUnwindSafe(|| f(&mut scratch, i, x))) {
                            Ok(r) => *slot = Some(r),
                            Err(payload) => {
                                poisoned
                                    .lock()
                                    .unwrap()
                                    .push((i, panic_message(payload.as_ref())));
                                scratch = init();
                            }
                        }
                    }
                });
            }
        });
    }
    let poisoned = poisoned.into_inner().unwrap();
    if !poisoned.is_empty() {
        report_poisoned("host-kernel item", poisoned);
    }
    slots.into_iter().map(|r| r.expect("item ran")).collect()
}

/// Runs `f(c, chunk_c)` over the `chunk_len`-sized chunks of `data` (the
/// last chunk may be shorter), on up to `threads` scoped worker threads,
/// returning per-chunk results in chunk order. The host-buffer-building
/// twin of [`par_pes`]: apps use it to fill per-PE slots of one big
/// scatter staging buffer concurrently.
///
/// # Panics
///
/// Panics if `chunk_len == 0` and `data` is non-empty — a zero chunk
/// length would silently decouple chunk indices from the caller's per-PE
/// layout.
pub fn par_chunks<T: Send, R: Send>(
    data: &mut [T],
    chunk_len: usize,
    threads: usize,
    f: impl Fn(usize, &mut [T]) -> R + Sync,
) -> Vec<R> {
    assert!(
        chunk_len > 0 || data.is_empty(),
        "par_chunks needs a non-zero chunk length"
    );
    let mut chunks: Vec<&mut [T]> = data.chunks_mut(chunk_len.max(1)).collect();
    par_pes(&mut chunks, threads, |i, c| f(i, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_pes_visits_in_index_order_results() {
        for threads in [1, 2, 3, 7, 64] {
            let mut items: Vec<u32> = (0..33).collect();
            let out = par_pes(&mut items, threads, |i, x| {
                *x += 1;
                i as u32 * 10
            });
            assert!(items.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
            assert_eq!(
                out,
                (0..33).map(|i| i * 10).collect::<Vec<_>>(),
                "{threads}"
            );
        }
    }

    #[test]
    fn par_chunks_covers_ragged_tail() {
        for threads in [1, 2, 5] {
            let mut data = vec![0u8; 23];
            let lens = par_chunks(&mut data, 5, threads, |c, chunk| {
                chunk.fill(c as u8 + 1);
                chunk.len()
            });
            assert_eq!(lens, vec![5, 5, 5, 5, 3]);
            assert!(data
                .iter()
                .enumerate()
                .all(|(i, &b)| b == (i / 5) as u8 + 1));
        }
    }

    #[test]
    fn par_pes_with_builds_scratch_once_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in [1usize, 2, 4, 16] {
            let inits = AtomicUsize::new(0);
            let mut items = vec![0u32; 37];
            // Scratch is a buffer every item fully overwrites — the
            // sanctioned pattern — and results must match the serial
            // fresh-buffer shape exactly.
            let out = par_pes_with(
                &mut items,
                threads,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    vec![0u8; 8]
                },
                |scratch, i, x| {
                    scratch.fill(i as u8);
                    *x = u32::from(scratch[7]) + 1;
                    scratch[0] as usize
                },
            );
            assert_eq!(out, (0..37).collect::<Vec<_>>(), "{threads}");
            assert!(items.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
            assert!(
                inits.load(Ordering::Relaxed) <= threads.max(1),
                "scratch built at most once per worker ({threads})"
            );
        }
    }

    #[test]
    fn poisoned_items_are_contained_and_reported_with_context() {
        for threads in [1usize, 4] {
            let mut items: Vec<u32> = (0..16).collect();
            let caught = catch_unwind(AssertUnwindSafe(|| {
                par_pes(&mut items, threads, |i, x| {
                    if i == 5 || i == 11 {
                        panic!("injected failure at item {i}");
                    }
                    *x += 100;
                })
            }))
            .expect_err("poisoned run must re-panic");
            let msg = panic_message(caught.as_ref());
            assert!(
                msg.contains("2 host-kernel item(s) panicked"),
                "{threads}: {msg}"
            );
            assert!(msg.contains("item 5"), "{threads}: {msg}");
            assert!(
                msg.contains("injected failure at item 5"),
                "{threads}: {msg}"
            );
            // Healthy items — including ones *after* the poisoned ones on
            // the same worker — still ran to completion.
            for (i, &x) in items.iter().enumerate() {
                let expect = if i == 5 || i == 11 {
                    i as u32
                } else {
                    i as u32 + 100
                };
                assert_eq!(x, expect, "item {i} at {threads} threads");
            }
        }
    }

    #[test]
    fn scratch_is_rebuilt_after_a_contained_panic() {
        let mut items = vec![0u8; 6];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_pes_with(
                &mut items,
                1,
                || vec![0u8; 4],
                |scratch, i, x| {
                    assert!(scratch.iter().all(|&b| b == 0), "scratch not rebuilt");
                    if i == 2 {
                        scratch.fill(0xee);
                        panic!("die mid-update");
                    }
                    *x = 1;
                },
            )
        }))
        .expect_err("must re-panic");
        assert!(panic_message(caught.as_ref()).contains("die mid-update"));
        assert_eq!(items, vec![1, 1, 0, 1, 1, 1]);
    }

    #[test]
    fn folds_over_results_match_serial() {
        let mut items = vec![0u64; 129];
        let serial = par_pes(&mut items, 1, |i, _| (i as f64).sqrt());
        for threads in [2, 8, 64] {
            let par = par_pes(&mut items, threads, |i, _| (i as f64).sqrt());
            let a = serial.iter().fold(0.0f64, |m, &v| m.max(v));
            let b = par.iter().fold(0.0f64, |m, &v| m.max(v));
            assert_eq!(a.to_bits(), b.to_bits(), "{threads}");
        }
    }
}

//! Property tests of the paged MRAM backing store: the segment layout
//! (which pages materialized, in how many runs) must never be observable
//! through the `Pe` API. Every test compares a *sparse* PE — islands of
//! pages created by scattered writes — against a *dense* twin whose whole
//! window was pre-materialized into one contiguous segment, replaying the
//! same operations on both.
//!
//! Inputs come from the shared seeded generator, so failures reproduce
//! exactly.

use pim_sim::pe::{Pe, MRAM_CAPACITY, PAGE_BYTES};
use pim_sim::testgen::SplitMix64;

/// A window of several pages starting away from zero, so straddles hit
/// both page and segment boundaries.
const WINDOW: usize = 6 * PAGE_BYTES;
const BASE: usize = 3 * PAGE_BYTES;

/// Builds the sparse/dense twin pair: both hold the same `islands` bytes,
/// but the dense twin's window is one pre-merged segment.
fn twins(islands: &[(usize, Vec<u8>)]) -> (Pe, Pe) {
    let mut sparse = Pe::new();
    let mut dense = Pe::new();
    dense.write(BASE, &vec![0u8; WINDOW]); // one segment covering the window
    for (offset, data) in islands {
        sparse.write(*offset, data);
        dense.write(*offset, data);
    }
    (sparse, dense)
}

fn random_islands(g: &mut SplitMix64, count: usize) -> Vec<(usize, Vec<u8>)> {
    (0..count)
        .map(|_| {
            let len = 1 + (g.next_u64() % 200) as usize;
            let offset = BASE + (g.next_u64() as usize) % (WINDOW - len);
            (offset, g.bytes(len))
        })
        .collect()
}

fn assert_windows_match(sparse: &Pe, dense: &Pe, what: &str) {
    assert_eq!(
        sparse.peek(BASE, WINDOW),
        dense.peek(BASE, WINDOW),
        "window diverges after {what}"
    );
}

#[test]
fn sparse_write_read_roundtrips() {
    let mut g = SplitMix64::new(0x9a6ed);
    for case in 0..32 {
        let islands = random_islands(&mut g, 8);
        let (mut sparse, dense) = twins(&islands);
        assert_windows_match(&sparse, &dense, "writes");
        // Every island region reads back identically through the growing
        // `read` path too (islands may overlap; the dense twin holds the
        // ground truth of last-writer-wins).
        for (offset, data) in &islands {
            let got = sparse.read(*offset, data.len()).to_vec();
            assert_eq!(got, dense.peek(*offset, data.len()), "case {case}");
        }
        // Far-away regions stay zero and unmaterialized.
        assert_eq!(sparse.peek(MRAM_CAPACITY - 64, 64), vec![0u8; 64]);
        assert!(
            sparse.mram_resident() <= dense.mram_resident(),
            "sparse twin must not materialize more than the dense one"
        );
    }
}

#[test]
fn page_straddling_copy_within_region_matches_dense() {
    let mut g = SplitMix64::new(0xc09a11);
    for _ in 0..32 {
        let islands = random_islands(&mut g, 6);
        let (mut sparse, mut dense) = twins(&islands);
        // A copy whose source and destination each straddle a page
        // boundary, placed so the regions cannot overlap.
        let len = PAGE_BYTES / 2 + 1 + (g.next_u64() % 64) as usize;
        let src = BASE + PAGE_BYTES - len / 2 + (g.next_u64() % 32) as usize;
        let dst = BASE + 4 * PAGE_BYTES - len / 2 + (g.next_u64() % 32) as usize;
        sparse.copy_within_region(src, dst, len);
        dense.copy_within_region(src, dst, len);
        assert_windows_match(&sparse, &dense, "copy_within_region");
    }
}

#[test]
fn page_straddling_permute_blocks_matches_dense() {
    let mut g = SplitMix64::new(0x3e97a);
    for _ in 0..24 {
        let islands = random_islands(&mut g, 6);
        let (mut sparse, mut dense) = twins(&islands);
        // Blocks sized so the permuted region crosses two page boundaries.
        let block = 1 << (7 + g.next_u64() % 4); // 128..1024
        let count = (2 * PAGE_BYTES / block) + 1 + (g.next_u64() % 4) as usize;
        let offset = BASE + PAGE_BYTES - block / 2;
        // Random permutation (Fisher-Yates).
        let mut perm: Vec<usize> = (0..count).collect();
        for i in (1..count).rev() {
            let j = (g.next_u64() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        sparse.permute_blocks(offset, block, count, &perm);
        dense.permute_blocks(offset, block, count, &perm);
        assert_windows_match(&sparse, &dense, "permute_blocks");

        // And the rotation fast path across the same layout.
        let rot = (g.next_u64() % count as u64) as usize;
        sparse.rotate_blocks(offset, block, count, rot);
        dense.rotate_blocks(offset, block, count, rot);
        assert_windows_match(&sparse, &dense, "rotate_blocks");
    }
}

#[test]
fn cross_pe_copies_match_dense() {
    let mut g = SplitMix64::new(0x11ad);
    for _ in 0..24 {
        let islands = random_islands(&mut g, 5);
        let (sparse, dense) = twins(&islands);
        let len = 1 + (g.next_u64() % (2 * PAGE_BYTES) as u64) as usize;
        let src = BASE + (g.next_u64() as usize) % (WINDOW - len);
        let dst = (g.next_u64() as usize) % (WINDOW - len);
        let mut to_sparse = Pe::new();
        let mut to_dense = Pe::new();
        to_sparse.copy_from(dst, &sparse, src, len);
        to_dense.copy_from(dst, &dense, src, len);
        assert_eq!(to_sparse.peek(dst, len), to_dense.peek(dst, len));
        assert_eq!(to_sparse.peek(dst, len), dense.peek(src, len));
    }
}

#[test]
fn growth_keeps_extent_and_residency_consistent() {
    // Dense forward streaming (the engine's common pattern) converges on
    // one segment; extent tracks the high-water mark exactly.
    let mut pe = Pe::new();
    pe.reserve_extent(WINDOW);
    let mut g = SplitMix64::new(0x90b1);
    let mut end = 0;
    while end < WINDOW {
        let chunk = 512 + (g.next_u64() % 4096) as usize;
        let data = g.bytes(chunk);
        pe.write(end, &data);
        end += chunk;
        assert_eq!(pe.mram_used(), end);
    }
    assert_eq!(pe.mram_resident(), end.next_multiple_of(PAGE_BYTES));
    assert!(pe.try_slice(0, end).is_some(), "one contiguous segment");
}

// L3a bad: wall-clock in a modeled path destroys reproducibility.
pub fn modeled_span() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}

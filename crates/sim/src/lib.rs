//! # pim-sim — a functional + timing simulator of PIM-enabled DIMMs
//!
//! This crate is the hardware substrate of the PID-Comm reproduction: a
//! byte-accurate model of an UPMEM-style system of PIM-enabled DIMMs, where
//! each memory bank has a processing element (PE) attached and the host CPU
//! is the only medium for inter-PE communication.
//!
//! It models the three properties the paper's techniques rest on:
//!
//! 1. **Entangled groups** ([`geometry`]): the 8 banks sharing a bank index
//!    across the 8 chips of a rank are always transferred together, 64 bytes
//!    per burst, 8 bytes per lane.
//! 2. **Domain transfer** ([`domain`]): data in the PIM domain is an 8×8
//!    byte transpose away from the host domain; word-level permutations in
//!    the host domain equal byte-lane permutations in the raw domain (the
//!    identity behind *cross-domain modulation*).
//! 3. **Cost structure** ([`cost`]): per-channel bus bandwidth, host vector
//!    ops, host-memory staging and PE-local reordering each have calibrated
//!    costs, accounted in the same breakdown categories the paper reports.
//!
//! # Examples
//!
//! ```
//! use pim_sim::{DimmGeometry, PimSystem};
//! use pim_sim::geometry::EgId;
//! use pim_sim::domain::transpose8x8;
//!
//! // One rank: 8 entangled groups of 8 PEs.
//! let mut sys = PimSystem::new(DimmGeometry::single_rank());
//!
//! // Each PE of group 0 holds one 64-bit word.
//! for lane in 0..8 {
//!     let pe = sys.geometry().pe_of(EgId(0), lane);
//!     sys.pe_mut(pe).write(0, &(lane as u64).to_le_bytes());
//! }
//!
//! // The host reads a burst (raw order) and domain-transfers it.
//! let mut block = sys.read_burst(EgId(0), 0).to_vec();
//! transpose8x8(&mut block);
//! let w3 = u64::from_le_bytes(block[24..32].try_into()?);
//! assert_eq!(w3, 3);
//! # Ok::<(), core::array::TryFromSliceError>(())
//! ```

pub mod arena;
pub mod cost;
pub mod domain;
pub mod dtype;
pub mod fault;
pub mod geometry;
pub mod kernels;
pub mod pe;
pub mod system;
pub mod testgen;

pub use arena::SystemArena;
pub use cost::{Breakdown, Category, TimeModel};
pub use dtype::{DType, ReduceKind};
pub use fault::{CorruptionEvent, FaultEvent, FaultKind, FaultPlan};
pub use geometry::{DimmGeometry, EgId, PeId};
pub use system::{Checkpoint, PimSystem};

//! Fig. 16: ablation study Base -> +PR -> +IM -> +CM for AlltoAll,
//! ReduceScatter, AllReduce and AllGather.

use pidcomm::{OptLevel, Primitive};
use pidcomm_bench::{geomean, header, run_primitive, PrimSetup};

fn main() {
    header(
        "Fig. 16",
        "ablation of the three techniques, 2-D (32,32)",
        "monotone gains; PR strongest for RS/AR; CM only helps AA/AG; AG gains smallest",
    );
    let setup = PrimSetup::default_2d(32 * 1024);
    println!(
        "{:<4} {:>9} {:>9} {:>9} {:>9}",
        "prim", "Base", "+PR", "+IM", "+CM"
    );
    let mut per_step: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for prim in [
        Primitive::AlltoAll,
        Primitive::ReduceScatter,
        Primitive::AllReduce,
        Primitive::AllGather,
    ] {
        let tps: Vec<f64> = OptLevel::ALL
            .iter()
            .map(|&opt| run_primitive(&setup, prim, opt).throughput_gbps())
            .collect();
        for step in 0..3 {
            per_step[step].push(tps[step + 1] / tps[step]);
        }
        println!(
            "{:<4} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            prim.abbrev(),
            tps[0],
            tps[1],
            tps[2],
            tps[3]
        );
    }
    println!(
        "geomean step gains: +PR {:.2}x, +IM {:.2}x, +CM {:.2}x (paper: 1.48x / 2.03x / 1.42x)",
        geomean(&per_step[0]),
        geomean(&per_step[1]),
        geomean(&per_step[2]),
    );
}

// L4 good: per-worker scratch is staged outside the region; inside it
// only reuses.
pub fn kernel(dst: &mut [u8], scratch: &mut Vec<u8>) {
    scratch.resize(64, 0);
    // simlint: hot(begin, fixture kernel)
    scratch.fill(1);
    dst.copy_from_slice(scratch);
    // simlint: hot(end)
}

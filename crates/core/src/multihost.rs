//! Multi-host hierarchical collectives (§IX-A, Fig. 23b).
//!
//! The paper demonstrates PID-Comm's extendability on a testbed of up to
//! four processes, each driving a four-rank UPMEM channel (256 PEs), with
//! the global step performed over MPI throttled to 10 Gbps ethernet.
//!
//! This module reproduces that setting: `H` independent [`PimSystem`]s —
//! each with its own hypercube and local collectives — joined by an
//! analytic [`LinkModel`]. AllReduce sends only locally-reduced data over
//! the link (1/P of the input), while AlltoAll must ship the `(H-1)/H`
//! fraction destined to other hosts, which is why its multi-host overhead
//! grows with host count while AllReduce's stays negligible.

use std::sync::Arc;

use pim_sim::dtype::{reduce_bytes, ReduceKind};
use pim_sim::{Breakdown, PimSystem, TimeModel};

use crate::comm::Communicator;
use crate::config::Primitive;
use crate::engine::plan::CollectivePlan;
use crate::engine::prepared::PreparedScatter;
use crate::engine::{parallel, BufferSpec};
use crate::error::{Error, Result};
use crate::hypercube::{CommGroup, DimMask};
use crate::oracle;

/// Runs `f(host, system)` once per host on scoped worker threads (hosts
/// own disjoint [`PimSystem`]s, mirroring the independent processes of the
/// paper's testbed) and returns the per-host results in host order; the
/// error of the lowest-numbered failing host wins, deterministically.
/// `threads` is the host-level fan-out resolved once at plan time.
///
/// A panicking host worker is contained ([`std::panic::catch_unwind`]) and
/// surfaces as [`Error::WorkerPanicked`] instead of unwinding through the
/// sibling hosts — in a real deployment one crashed MPI rank must not take
/// the driver process down with it. Containment ranks with the same
/// lowest-host rule as ordinary errors.
fn par_hosts<T, F>(threads: usize, systems: &mut [PimSystem], f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize, &mut PimSystem) -> Result<T> + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let mut units: Vec<(usize, &mut PimSystem, Option<Result<T>>)> = systems
        .iter_mut()
        .enumerate()
        .map(|(h, s)| (h, s, None))
        .collect();
    parallel::par_for_each(&mut units, threads, |u| {
        let (h, sys) = (u.0, &mut *u.1);
        u.2 = Some(match catch_unwind(AssertUnwindSafe(|| f(h, sys))) {
            Ok(res) => res,
            Err(payload) => Err(Error::WorkerPanicked(format!(
                "host {h}: {}",
                crate::engine::hostkernel::panic_message(payload.as_ref())
            ))),
        });
    });
    units
        .into_iter()
        .map(|u| u.2.expect("host task ran"))
        .collect()
}

/// Analytic model of the inter-host interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Link bandwidth in bytes per nanosecond (GB/s). The paper throttles
    /// MPI to 10 Gbps = 1.25 GB/s.
    pub bandwidth: f64,
    /// Per-message latency in nanoseconds.
    pub latency_ns: f64,
}

impl LinkModel {
    /// The paper's 10 Gbps ethernet setting.
    pub fn ethernet_10g() -> Self {
        Self {
            bandwidth: 1.25,
            latency_ns: 20_000.0,
        }
    }

    /// Time for an H-host ring exchange where every host contributes
    /// `bytes` and the algorithm moves the classic `(H-1)/H` fraction
    /// `passes` times.
    pub fn collective_time(&self, hosts: usize, bytes: u64, passes: f64) -> f64 {
        if hosts <= 1 {
            return 0.0;
        }
        let frac = (hosts as f64 - 1.0) / hosts as f64;
        passes * frac * bytes as f64 / self.bandwidth + 2.0 * (hosts as f64 - 1.0) * self.latency_ns
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        Self::ethernet_10g()
    }
}

/// Timing result of a multi-host collective: hosts run their local phases
/// in parallel, so the local component is the slowest host's breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiHostReport {
    /// Breakdown of the slowest host's local work.
    pub local: Breakdown,
    /// Time spent on the inter-host link.
    pub mpi_ns: f64,
    /// Number of hosts.
    pub hosts: usize,
}

impl MultiHostReport {
    /// Total modeled wall-clock time in nanoseconds.
    pub fn time_ns(&self) -> f64 {
        self.local.total() + self.mpi_ns
    }
}

/// A set of identical PIM hosts joined by a link.
///
/// Each host has the same geometry and hypercube; `comms[h]` issues the
/// local collectives of host `h`.
#[derive(Debug)]
pub struct MultiHost {
    /// The per-host communicators (same shape on every host).
    comms: Vec<Communicator>,
    link: LinkModel,
}

impl MultiHost {
    /// Creates a multi-host ensemble from per-host communicators.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidHostData`] if `comms` is empty or the hosts
    /// disagree on shape.
    pub fn new(comms: Vec<Communicator>, link: LinkModel) -> Result<Self> {
        if comms.is_empty() {
            return Err(Error::InvalidHostData("need at least one host".into()));
        }
        let shape = comms[0].manager().shape().clone();
        if comms.iter().any(|c| c.manager().shape() != &shape) {
            return Err(Error::InvalidHostData(
                "all hosts must share one hypercube shape".into(),
            ));
        }
        Ok(Self { comms, link })
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.comms.len()
    }

    /// Plans one hierarchical collective across all hosts: resolves the
    /// host-level thread schedule once (including the inner auto-budget
    /// division of concurrently running hosts), builds the per-host inner
    /// [`CollectivePlan`]s for both local phases, and captures the shared
    /// group tables — everything the per-call path re-derived on every
    /// invocation. The returned [`MultiHostPlan`] executes any number of
    /// times; the one-shot methods below are plan-then-execute.
    ///
    /// Supported primitives: `AllReduce`, `AlltoAll`, `ReduceScatter`,
    /// `AllGather` (the hierarchical collectives of §IX-A).
    ///
    /// # Errors
    ///
    /// Propagates local plan validation errors, plus the multi-host
    /// divisibility requirements of AlltoAll / ReduceScatter.
    pub fn plan(
        &self,
        primitive: Primitive,
        mask: &DimMask,
        spec: &BufferSpec,
        op: ReduceKind,
    ) -> Result<MultiHostPlan> {
        let h = self.hosts();
        let b = spec.bytes_per_node;
        let manager = self.comms[0].manager();
        let n = mask.group_size(manager.shape())?;
        let num_groups = manager.num_nodes() / n;
        // Only the AlltoAll/AllGather execute paths walk the group member
        // tables (for their host-side snapshots); the reduction
        // hierarchies just count groups.
        let groups = if matches!(primitive, Primitive::AlltoAll | Primitive::AllGather) {
            manager.groups(mask)?
        } else {
            Vec::new()
        };

        // The host-level schedule (formerly recomputed inside every
        // `par_hosts` call): an explicit bound on every host caps the host
        // fan-out at the largest bound, any host on auto keeps it
        // automatic; hosts left on auto get their inner cluster budget
        // divided by the number of concurrently running hosts so `H` hosts
        // cannot oversubscribe an `N`-core box `H`-fold. Purely an
        // execution-schedule knob — results and reports are byte-identical
        // at every setting.
        let requested = if self.comms.iter().any(|c| c.threads() == 0) {
            0
        } else {
            self.comms.iter().map(|c| c.threads()).max().unwrap_or(1)
        };
        let host_threads = parallel::effective_threads(requested, h);
        let inner_auto = (parallel::auto_threads() / host_threads.max(1)).max(1);
        let inner_threads = |c: &Communicator| {
            if host_threads > 1 && c.threads() == 0 {
                inner_auto
            } else {
                c.threads()
            }
        };
        let inner_plan = |c: &Communicator, prim: Primitive, spec: &BufferSpec| {
            CollectivePlan::build(c.manager(), c.opt(), prim, mask, spec, op, inner_threads(c))
        };
        // Phase-3 plans live behind `Arc` so the reduction hierarchies can
        // feed one shared [`PreparedScatter`] image to every host worker.
        let inner_plan_arc = |c: &Communicator, prim: Primitive, spec: &BufferSpec| {
            inner_plan(c, prim, spec).map(Arc::new)
        };

        // Per-primitive phase specs (phase 2 is the analytic link model).
        let (phase1, phase3): (Vec<CollectivePlan>, Vec<Arc<CollectivePlan>>) = match primitive {
            Primitive::AllReduce => {
                let p3 = BufferSpec {
                    src_offset: 0,
                    dst_offset: spec.dst_offset,
                    bytes_per_node: b,
                    dtype: spec.dtype,
                };
                (
                    self.comms
                        .iter()
                        .map(|c| inner_plan(c, Primitive::Reduce, spec))
                        .collect::<Result<_>>()?,
                    self.comms
                        .iter()
                        .map(|c| inner_plan_arc(c, Primitive::Broadcast, &p3))
                        .collect::<Result<_>>()?,
                )
            }
            Primitive::AlltoAll => {
                if !b.is_multiple_of(8 * n * h) {
                    return Err(Error::InvalidBuffer(format!(
                        "multi-host AlltoAll needs bytes_per_node divisible by 8 x {} (hosts x group size); got {b}",
                        n * h
                    )));
                }
                let p3 = BufferSpec {
                    src_offset: 0,
                    dst_offset: spec.dst_offset,
                    bytes_per_node: b,
                    dtype: spec.dtype,
                };
                (
                    self.comms
                        .iter()
                        .map(|c| inner_plan(c, Primitive::AlltoAll, spec))
                        .collect::<Result<_>>()?,
                    self.comms
                        .iter()
                        .map(|c| inner_plan_arc(c, Primitive::Scatter, &p3))
                        .collect::<Result<_>>()?,
                )
            }
            Primitive::ReduceScatter => {
                if !b.is_multiple_of(8 * n * h) {
                    return Err(Error::InvalidHostData(format!(
                        "multi-host ReduceScatter needs bytes_per_node divisible by 8 x {} (hosts x group size); got {b}",
                        n * h
                    )));
                }
                let p3 = BufferSpec {
                    src_offset: 0,
                    dst_offset: spec.dst_offset,
                    bytes_per_node: b / (n * h),
                    dtype: spec.dtype,
                };
                (
                    self.comms
                        .iter()
                        .map(|c| inner_plan(c, Primitive::Reduce, spec))
                        .collect::<Result<_>>()?,
                    self.comms
                        .iter()
                        .map(|c| inner_plan_arc(c, Primitive::Scatter, &p3))
                        .collect::<Result<_>>()?,
                )
            }
            Primitive::AllGather => {
                // The local AllGather's intermediate result lands in a
                // scratch region past the final destination window.
                let p1 = BufferSpec {
                    src_offset: spec.src_offset,
                    dst_offset: (spec.dst_offset + h * n * b).next_multiple_of(64),
                    bytes_per_node: b,
                    dtype: spec.dtype,
                };
                let p3 = BufferSpec {
                    src_offset: 0,
                    dst_offset: spec.dst_offset,
                    bytes_per_node: h * n * b,
                    dtype: spec.dtype,
                };
                (
                    self.comms
                        .iter()
                        .map(|c| inner_plan(c, Primitive::AllGather, &p1))
                        .collect::<Result<_>>()?,
                    self.comms
                        .iter()
                        .map(|c| inner_plan_arc(c, Primitive::Broadcast, &p3))
                        .collect::<Result<_>>()?,
                )
            }
            other => {
                return Err(Error::InvalidHostData(format!(
                    "{other} has no hierarchical multi-host form"
                )))
            }
        };

        Ok(MultiHostPlan {
            primitive,
            spec: *spec,
            op,
            link: self.link,
            hosts: h,
            host_threads,
            n,
            num_groups,
            groups,
            phase1,
            phase3,
        })
    }

    /// Hierarchical AllReduce across all hosts (§IX-A): local Reduce to
    /// each host's root, an inter-host exchange of the (small) reduced
    /// vectors, then local Broadcast. Every PE of every host ends with the
    /// global element-wise reduction at `spec.dst_offset`.
    ///
    /// # Errors
    ///
    /// Propagates local collective validation errors; `systems.len()` must
    /// equal the host count.
    pub fn all_reduce(
        &self,
        systems: &mut [PimSystem],
        mask: &DimMask,
        spec: &BufferSpec,
        op: ReduceKind,
    ) -> Result<MultiHostReport> {
        self.plan(Primitive::AllReduce, mask, spec, op)?
            .execute(systems)
    }

    /// Hierarchical AlltoAll across all hosts: a local AlltoAll groups data
    /// by destination, the `(H-1)/H` cross-host fraction travels over the
    /// link, and a local Scatter places the incoming chunks. Node ranks are
    /// global: host `h`, local rank `r` is global rank `h * N + r`, and
    /// `spec.bytes_per_node` covers `H × N` chunks.
    ///
    /// # Errors
    ///
    /// Propagates local collective validation errors.
    pub fn all_to_all(
        &self,
        systems: &mut [PimSystem],
        mask: &DimMask,
        spec: &BufferSpec,
    ) -> Result<MultiHostReport> {
        self.plan(Primitive::AlltoAll, mask, spec, ReduceKind::Sum)?
            .execute(systems)
    }

    /// Hierarchical ReduceScatter across all hosts: local Reduce per host,
    /// an inter-host exchange of the reduced vectors, then a local Scatter
    /// of each host's chunk range. Global rank `h * N + r` receives chunk
    /// `h * N + r` of the globally reduced vector; `spec.bytes_per_node`
    /// covers `H × N` chunks (§IX-A: "similar trends persist in
    /// ReduceScatter whose data are sent after reduction").
    ///
    /// # Errors
    ///
    /// Propagates local collective validation errors.
    pub fn reduce_scatter(
        &self,
        systems: &mut [PimSystem],
        mask: &DimMask,
        spec: &BufferSpec,
        op: ReduceKind,
    ) -> Result<MultiHostReport> {
        self.plan(Primitive::ReduceScatter, mask, spec, op)?
            .execute(systems)
    }

    /// Hierarchical AllGather across all hosts: local AllGather, an
    /// inter-host exchange of the per-host concatenations (data crosses
    /// the link *before* duplication, §IX-A), then a local Broadcast of
    /// the global concatenation ordered by global rank.
    ///
    /// # Errors
    ///
    /// Propagates local collective validation errors.
    pub fn all_gather(
        &self,
        systems: &mut [PimSystem],
        mask: &DimMask,
        spec: &BufferSpec,
    ) -> Result<MultiHostReport> {
        self.plan(Primitive::AllGather, mask, spec, ReduceKind::Sum)?
            .execute(systems)
    }
}

/// A planned hierarchical collective: the host-level schedule, the shared
/// group tables and one inner [`CollectivePlan`] per host per local phase,
/// reusable across any number of executions (see [`MultiHost::plan`]).
pub struct MultiHostPlan {
    primitive: Primitive,
    spec: BufferSpec,
    op: ReduceKind,
    link: LinkModel,
    hosts: usize,
    /// Host-level fan-out, resolved once at plan time.
    host_threads: usize,
    /// Local communication group size `N`.
    n: usize,
    num_groups: usize,
    /// The per-host group tables (identical on every host — all hosts
    /// share one hypercube shape), captured once.
    groups: Vec<CommGroup>,
    /// Per-host plans of the first local phase.
    phase1: Vec<CollectivePlan>,
    /// Per-host plans of the closing local phase, shareable so the
    /// reduction hierarchies can stage one [`PreparedScatter`] image for
    /// every host (the hosts share one hypercube shape).
    phase3: Vec<Arc<CollectivePlan>>,
}

impl MultiHostPlan {
    /// The hierarchical primitive this plan executes.
    pub fn primitive(&self) -> Primitive {
        self.primitive
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// Time the phase-2 inter-host exchange spends on the link — purely
    /// analytic (the functional path computes nothing else for it), so
    /// the **single source of truth** shared by [`MultiHostPlan::execute`]
    /// and [`MultiHostPlan::execute_cost_only`].
    fn mpi_ns(&self) -> f64 {
        let h = self.hosts;
        let b = self.spec.bytes_per_node;
        let n = self.n;
        match self.primitive {
            // Reduced vectors cross twice (reduce-scatter + all-gather ring).
            Primitive::AllReduce => self
                .link
                .collective_time(h, (self.num_groups * b) as u64, 2.0),
            // The (H-1)/H cross-host fraction of each host's share.
            Primitive::AlltoAll => {
                let total_bytes = (self.num_groups * n * h * b) as u64;
                self.link.collective_time(h, total_bytes / h as u64, 1.0)
            }
            Primitive::ReduceScatter => {
                self.link
                    .collective_time(h, (self.num_groups * b) as u64, 1.0)
            }
            // Per-host concatenations cross once, before duplication.
            Primitive::AllGather => {
                let total = (self.num_groups * h * n * b) as u64;
                self.link.collective_time(h, total, 1.0)
            }
            _ => unreachable!("plan() only builds hierarchical primitives"),
        }
    }

    /// Cost-only execution: replays both local phases of every host
    /// analytically via [`CollectivePlan::charge_cost_only`] plus the
    /// analytic link model, producing a [`MultiHostReport`] bit-identical
    /// to [`MultiHostPlan::execute`] on fresh systems — without moving a
    /// byte. The per-host meter is accumulated exactly as the functional
    /// path does (phase 1 from zero, phase 3 continuing on the same
    /// meter, then the phase-3 delta added back), so even the f64
    /// rounding sequence matches.
    pub fn execute_cost_only(&self, model: &TimeModel) -> MultiHostReport {
        let mut locals = Vec::with_capacity(self.hosts);
        for host in 0..self.hosts {
            let mut meter = Breakdown::new();
            self.phase1[host].charge_cost_only(&mut meter, model);
            let p1 = meter;
            self.phase3[host].charge_cost_only(&mut meter, model);
            let extra = meter.since(&p1);
            let mut local = p1;
            local += extra;
            locals.push(local);
        }
        MultiHostReport {
            local: slowest(&locals),
            mpi_ns: self.mpi_ns(),
            hosts: self.hosts,
        }
    }

    /// Executes the planned collective over one [`PimSystem`] per host.
    ///
    /// # Errors
    ///
    /// `systems.len()` must equal the host count; propagates local
    /// execution errors (e.g. geometry mismatches).
    pub fn execute(&self, systems: &mut [PimSystem]) -> Result<MultiHostReport> {
        if systems.len() != self.hosts {
            return Err(Error::InvalidHostData(format!(
                "{} systems for {} hosts",
                systems.len(),
                self.hosts
            )));
        }
        match self.primitive {
            Primitive::AllReduce => self.run_all_reduce(systems),
            Primitive::AlltoAll => self.run_all_to_all(systems),
            Primitive::ReduceScatter => self.run_reduce_scatter(systems),
            Primitive::AllGather => self.run_all_gather(systems),
            _ => unreachable!("plan() only builds hierarchical primitives"),
        }
    }

    fn run_all_reduce(&self, systems: &mut [PimSystem]) -> Result<MultiHostReport> {
        let h = self.hosts;

        // Phase 1: local Reduce on every host (hosts really run in
        // parallel, one worker thread each).
        let phase1 = par_hosts(self.host_threads, systems, |host, sys| {
            let (report, out) = self.phase1[host].execute_to_host(sys)?;
            Ok((report.breakdown, out))
        })?;
        let (mut locals, reduced): (Vec<Breakdown>, Vec<Vec<Vec<u8>>>) = phase1.into_iter().unzip();

        // Phase 2: inter-host AllReduce of the per-group reduced vectors.
        let mut global: Vec<Vec<u8>> = reduced[0].clone();
        for host in &reduced[1..] {
            for (acc, src) in global.iter_mut().zip(host) {
                reduce_bytes(self.op, self.spec.dtype, acc, src);
            }
        }
        let mpi_ns = self.mpi_ns();

        // Phase 3: local Broadcast of the global result. Every host
        // broadcasts the same bytes, so the rows are validated and staged
        // once through the prepared tier and the shared image feeds all
        // host workers (host 0's plan serves every system — the hosts
        // share one shape, and threads are a schedule-only knob).
        let prepared = PreparedScatter::stage(Arc::clone(&self.phase3[0]), &global)?;
        let phase3 = par_hosts(self.host_threads, systems, |_host, sys| {
            Ok(prepared.execute(sys)?.breakdown)
        })?;
        for (local, extra) in locals.iter_mut().zip(phase3) {
            *local += extra;
        }

        Ok(MultiHostReport {
            local: slowest(&locals),
            mpi_ns,
            hosts: h,
        })
    }

    fn run_all_to_all(&self, systems: &mut [PimSystem]) -> Result<MultiHostReport> {
        let h = self.hosts;
        let b = self.spec.bytes_per_node;
        let n = self.n;

        // Snapshot inputs: global semantics are computed functionally over
        // the union of all hosts' groups (the plan's shared group tables).
        let mut inputs: Vec<Vec<Vec<u8>>> = vec![Vec::new(); self.num_groups]; // [group][global rank]
        for (gid, input) in inputs.iter_mut().enumerate() {
            for sys in systems.iter() {
                for &pe in &self.groups[gid].members {
                    input.push(sys.pe(pe).peek(self.spec.src_offset, b));
                }
            }
        }

        // Phase 1: local AlltoAll on every host to group chunks by
        // destination host (charged, data rearranged in place).
        let mut locals: Vec<Breakdown> = par_hosts(self.host_threads, systems, |host, sys| {
            Ok(self.phase1[host].execute(sys)?.breakdown)
        })?;

        // Phase 2: the chunks destined to other hosts cross the link.
        let mpi_ns = self.mpi_ns();

        // Phase 3: place the globally-correct result with a local Scatter.
        // The global AlltoAll oracle runs once per group; every host
        // scatters its own rank range of the shared result.
        let global: Vec<Vec<Vec<u8>>> = inputs.iter().map(|i| oracle::alltoall(i)).collect();
        let phase3 = par_hosts(self.host_threads, systems, |host, sys| {
            let scatter_bufs: Vec<Vec<u8>> = global
                .iter()
                .map(|out| out[host * n..(host + 1) * n].concat())
                .collect();
            Ok(self.phase3[host]
                .execute_with_host(sys, &scatter_bufs)?
                .breakdown)
        })?;
        for (local, extra) in locals.iter_mut().zip(phase3) {
            *local += extra;
        }

        Ok(MultiHostReport {
            local: slowest(&locals),
            mpi_ns,
            hosts: h,
        })
    }

    fn run_reduce_scatter(&self, systems: &mut [PimSystem]) -> Result<MultiHostReport> {
        let h = self.hosts;
        let b = self.spec.bytes_per_node;
        let n = self.n;
        let chunk = b / (n * h);

        // Phase 1: local Reduce on every host.
        let phase1 = par_hosts(self.host_threads, systems, |host, sys| {
            let (report, out) = self.phase1[host].execute_to_host(sys)?;
            Ok((report.breakdown, out))
        })?;
        let (mut locals, reduced): (Vec<Breakdown>, Vec<Vec<Vec<u8>>>) = phase1.into_iter().unzip();

        // Phase 2: inter-host reduce-scatter of the reduced vectors — one
        // (H-1)/H pass of the reduced data.
        let mut global: Vec<Vec<u8>> = reduced[0].clone();
        for host in &reduced[1..] {
            for (acc, src) in global.iter_mut().zip(host) {
                reduce_bytes(self.op, self.spec.dtype, acc, src);
            }
        }
        let mpi_ns = self.mpi_ns();

        // Phase 3: local Scatter of this host's chunk range.
        let phase3 = par_hosts(self.host_threads, systems, |host, sys| {
            let bufs: Vec<Vec<u8>> = (0..self.num_groups)
                .map(|g| {
                    let lo = host * n * chunk;
                    global[g][lo..lo + n * chunk].to_vec()
                })
                .collect();
            Ok(self.phase3[host].execute_with_host(sys, &bufs)?.breakdown)
        })?;
        for (local, extra) in locals.iter_mut().zip(phase3) {
            *local += extra;
        }

        Ok(MultiHostReport {
            local: slowest(&locals),
            mpi_ns,
            hosts: h,
        })
    }

    fn run_all_gather(&self, systems: &mut [PimSystem]) -> Result<MultiHostReport> {
        let h = self.hosts;
        let b = self.spec.bytes_per_node;

        // Phase 1: capture inputs (the local AllGather overwrites nothing
        // at src, but we assemble the global result host-side anyway) and
        // run the real local AllGather for its cost.
        let mut concat: Vec<Vec<u8>> = vec![Vec::new(); self.num_groups]; // by global rank
        for sys in systems.iter() {
            for g in &self.groups {
                for &pe in &g.members {
                    let data = sys.pe(pe).peek(self.spec.src_offset, b);
                    concat[g.id].extend_from_slice(&data);
                }
            }
        }
        let mut locals: Vec<Breakdown> = par_hosts(self.host_threads, systems, |host, sys| {
            Ok(self.phase1[host].execute(sys)?.breakdown)
        })?;

        // Phase 2: the per-host concatenations cross the link once.
        let mpi_ns = self.mpi_ns();

        // Phase 3: local Broadcast of the global concatenation, staged
        // once and shared by all hosts exactly as in the AllReduce tail.
        let prepared = PreparedScatter::stage(Arc::clone(&self.phase3[0]), &concat)?;
        let phase3 = par_hosts(self.host_threads, systems, |_host, sys| {
            Ok(prepared.execute(sys)?.breakdown)
        })?;
        for (local, extra) in locals.iter_mut().zip(phase3) {
            *local += extra;
        }

        Ok(MultiHostReport {
            local: slowest(&locals),
            mpi_ns,
            hosts: h,
        })
    }
}

fn slowest(locals: &[Breakdown]) -> Breakdown {
    locals
        .iter()
        .copied()
        .max_by(|a, b| a.total().partial_cmp(&b.total()).unwrap())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::{HypercubeManager, HypercubeShape};
    use pim_sim::{DType, DimmGeometry};

    fn ensemble(hosts: usize) -> (MultiHost, Vec<PimSystem>, DimMask) {
        let geom = DimmGeometry::single_rank(); // 64 PEs per host
        let comms: Vec<Communicator> = (0..hosts)
            .map(|_| {
                let m =
                    HypercubeManager::new(HypercubeShape::new(vec![8, 8]).unwrap(), geom).unwrap();
                Communicator::new(m)
            })
            .collect();
        let systems: Vec<PimSystem> = (0..hosts).map(|_| PimSystem::new(geom)).collect();
        let mh = MultiHost::new(comms, LinkModel::ethernet_10g()).unwrap();
        (mh, systems, "10".parse().unwrap())
    }

    fn fill(systems: &mut [PimSystem], bytes: usize) {
        for (h, sys) in systems.iter_mut().enumerate() {
            for pe in sys.geometry().pes() {
                let data: Vec<u8> = (0..bytes)
                    .map(|i| ((h * 19 + pe.0 as usize * 7 + i) % 113) as u8)
                    .collect();
                sys.pe_mut(pe).write(0, &data);
            }
        }
    }

    #[test]
    fn panicking_host_worker_becomes_typed_error() {
        let geom = DimmGeometry::single_rank();
        let mut systems: Vec<PimSystem> = (0..3).map(|_| PimSystem::new(geom)).collect();
        for threads in [1usize, 3] {
            let err = par_hosts(threads, &mut systems, |h, _sys| -> Result<u32> {
                if h >= 1 {
                    panic!("host worker {h} crashed");
                }
                Ok(h as u32)
            })
            .expect_err("panic must surface as an error");
            match err {
                // Hosts 1 and 2 both die; the lowest-numbered one wins.
                Error::WorkerPanicked(msg) => {
                    assert!(msg.starts_with("host 1:"), "{threads}: {msg}");
                    assert!(msg.contains("host worker 1 crashed"), "{threads}: {msg}");
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }
    }

    #[test]
    fn multi_host_all_reduce_reduces_globally() {
        let (mh, mut systems, mask) = ensemble(3);
        let b = 64;
        fill(&mut systems, b);

        // Expected: per group id, reduce over the group members of all hosts.
        let groups = mh.comms[0].manager().groups(&mask).unwrap();
        let mut expected: Vec<Vec<u8>> = Vec::new();
        for g in &groups {
            let mut inputs = Vec::new();
            for sys in systems.iter_mut() {
                for &pe in &g.members {
                    inputs.push(sys.pe_mut(pe).read(0, b).to_vec());
                }
            }
            expected.push(oracle::reduce(&inputs, ReduceKind::Sum, DType::U64));
        }

        let report = mh
            .all_reduce(
                &mut systems,
                &mask,
                &BufferSpec::new(0, 1024, b),
                ReduceKind::Sum,
            )
            .unwrap();
        assert_eq!(report.hosts, 3);
        assert!(report.mpi_ns > 0.0);

        for sys in systems.iter_mut() {
            for (g, want) in groups.iter().zip(&expected) {
                for &pe in &g.members {
                    let got = sys.pe_mut(pe).read(1024, b).to_vec();
                    assert_eq!(&got, want, "host result for {pe}");
                }
            }
        }
    }

    #[test]
    fn multi_host_alltoall_matches_global_oracle() {
        let hosts = 2;
        let (mh, mut systems, mask) = ensemble(hosts);
        let n = 8;
        let b = 8 * n * hosts; // one 8-byte word per global destination
        fill(&mut systems, b);

        // Capture expected global result.
        let groups = mh.comms[0].manager().groups(&mask).unwrap();
        let mut expected: Vec<Vec<Vec<u8>>> = Vec::new(); // [group][global rank]
        for g in &groups {
            let mut inputs = Vec::new();
            for sys in systems.iter_mut() {
                for &pe in &g.members {
                    inputs.push(sys.pe_mut(pe).read(0, b).to_vec());
                }
            }
            expected.push(oracle::alltoall(&inputs));
        }

        let report = mh
            .all_to_all(&mut systems, &mask, &BufferSpec::new(0, 4096, b))
            .unwrap();
        assert!(report.mpi_ns > 0.0);

        for (h, sys) in systems.iter_mut().enumerate() {
            for (g, want) in groups.iter().zip(&expected) {
                for (r, &pe) in g.members.iter().enumerate() {
                    let got = sys.pe_mut(pe).read(4096, b).to_vec();
                    assert_eq!(&got, &want[h * n + r], "host {h} {pe}");
                }
            }
        }
    }

    #[test]
    fn single_host_has_no_mpi_cost() {
        let (mh, mut systems, mask) = ensemble(1);
        let b = 64;
        fill(&mut systems, b);
        let report = mh
            .all_reduce(
                &mut systems,
                &mask,
                &BufferSpec::new(0, 1024, b),
                ReduceKind::Sum,
            )
            .unwrap();
        assert_eq!(report.mpi_ns, 0.0);
    }

    #[test]
    fn alltoall_mpi_cost_exceeds_allreduce_mpi_cost() {
        // AllReduce ships reduced data (1/N of input); AlltoAll ships the
        // (H-1)/H fraction of everything (§IX-A).
        let (mh, mut systems, mask) = ensemble(4);
        let n = 8;
        let b = 8 * n * 4;
        fill(&mut systems, b);
        let ar = mh
            .all_reduce(
                &mut systems,
                &mask,
                &BufferSpec::new(0, 8192, b),
                ReduceKind::Sum,
            )
            .unwrap();
        fill(&mut systems, b);
        let aa = mh
            .all_to_all(&mut systems, &mask, &BufferSpec::new(0, 16384, b))
            .unwrap();
        assert!(
            aa.mpi_ns > ar.mpi_ns,
            "AA {} vs AR {}",
            aa.mpi_ns,
            ar.mpi_ns
        );
    }

    #[test]
    fn multi_host_reduce_scatter_chunks_globally() {
        let hosts = 2;
        let (mh, mut systems, mask) = ensemble(hosts);
        let n = 8;
        let b = 8 * n * hosts; // one 8-byte chunk per global rank
        fill(&mut systems, b);

        // Expected: global rank h*n + r gets chunk h*n + r of the global sum.
        let groups = mh.comms[0].manager().groups(&mask).unwrap();
        let mut expected: Vec<Vec<Vec<u8>>> = Vec::new(); // [group][global rank]
        for g in &groups {
            let mut inputs = Vec::new();
            for sys in systems.iter_mut() {
                for &pe in &g.members {
                    inputs.push(sys.pe_mut(pe).read(0, b).to_vec());
                }
            }
            expected.push(oracle::reduce_scatter(&inputs, ReduceKind::Sum, DType::U64));
        }

        let report = mh
            .reduce_scatter(
                &mut systems,
                &mask,
                &BufferSpec::new(0, 4096, b),
                ReduceKind::Sum,
            )
            .unwrap();
        assert!(report.mpi_ns > 0.0);
        let chunk = b / (n * hosts);
        for (h, sys) in systems.iter_mut().enumerate() {
            for (g, want) in groups.iter().zip(&expected) {
                for (r, &pe) in g.members.iter().enumerate() {
                    let got = sys.pe_mut(pe).read(4096, chunk).to_vec();
                    assert_eq!(&got, &want[h * n + r], "host {h} {pe}");
                }
            }
        }
    }

    #[test]
    fn multi_host_all_gather_concatenates_globally() {
        let hosts = 2;
        let (mh, mut systems, mask) = ensemble(hosts);
        let n = 8;
        let b = 16;
        fill(&mut systems, b);

        let groups = mh.comms[0].manager().groups(&mask).unwrap();
        let mut expected: Vec<Vec<u8>> = Vec::new(); // [group] global concat
        for g in &groups {
            let mut cat = Vec::new();
            for sys in systems.iter_mut() {
                for &pe in &g.members {
                    cat.extend(sys.pe_mut(pe).read(0, b).to_vec());
                }
            }
            expected.push(cat);
        }

        let report = mh
            .all_gather(&mut systems, &mask, &BufferSpec::new(0, 4096, b))
            .unwrap();
        assert!(report.mpi_ns > 0.0);
        for sys in systems.iter_mut() {
            for (g, want) in groups.iter().zip(&expected) {
                for &pe in &g.members {
                    let got = sys.pe_mut(pe).read(4096, hosts * n * b).to_vec();
                    assert_eq!(&got, want, "{pe}");
                }
            }
        }
    }

    #[test]
    fn reduced_primitives_ship_less_mpi_data_than_allgather() {
        // §IX-A: RS sends data after reduction, AG before duplication.
        let (mh, mut systems, mask) = ensemble(4);
        let n = 8;
        let b = 8 * n * 4;
        fill(&mut systems, b);
        let rs = mh
            .reduce_scatter(
                &mut systems,
                &mask,
                &BufferSpec::new(0, 8192, b),
                ReduceKind::Sum,
            )
            .unwrap();
        fill(&mut systems, 16);
        let ag = mh
            .all_gather(&mut systems, &mask, &BufferSpec::new(0, 8192, 16))
            .unwrap();
        assert!(rs.mpi_ns > 0.0 && ag.mpi_ns > 0.0);
    }

    #[test]
    fn mismatched_system_count_rejected() {
        let (mh, mut systems, mask) = ensemble(2);
        systems.pop();
        let err = mh
            .all_reduce(
                &mut systems,
                &mask,
                &BufferSpec::new(0, 1024, 64),
                ReduceKind::Sum,
            )
            .unwrap_err();
        assert!(matches!(err, Error::InvalidHostData(_)));
    }

    #[test]
    fn link_model_scaling() {
        let link = LinkModel::ethernet_10g();
        assert_eq!(link.collective_time(1, 1 << 20, 2.0), 0.0);
        let t2 = link.collective_time(2, 1 << 20, 1.0);
        let t4 = link.collective_time(4, 1 << 20, 1.0);
        assert!(t4 > t2, "more hosts, more link time");
    }
}

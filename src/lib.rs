//! Workspace façade re-exporting the PID-Comm reproduction crates.
pub use pidcomm;
pub use pidcomm_apps as apps;
pub use pidcomm_data as data;
pub use pim_sim as sim;

//! Persistent collective plans: the plan half of the engine's
//! plan-once / execute-many split.
//!
//! Every collective call used to re-derive the same state on entry:
//! validate the [`BufferSpec`] against the group geometry, decompose the
//! mask into [`EgCluster`]s, rebuild the [`PermCache`] tables, recompute
//! the per-cluster rotation schedule and re-resolve the thread fan-out.
//! None of that depends on the payload — only on
//! `(primitive, opt, mask, spec, geometry, op, threads)` — so iteration-heavy
//! applications (CC/BFS run the identical `AllReduce` every level until
//! fixed point, MLP per layer, GNN per step, DLRM per batch) paid a fixed
//! planning cost per iteration for a plan that never changed.
//!
//! [`CollectivePlan`] captures all of it as a first-class, reusable value,
//! in the style of MPI persistent requests / FFTW plans:
//!
//! * [`crate::Communicator::plan`] builds a plan;
//!   [`CollectivePlan::execute`] (and the rooted variants
//!   [`CollectivePlan::execute_with_host`] /
//!   [`CollectivePlan::execute_to_host`]) runs it any number of times,
//!   against any system of matching geometry — byte-identical to the
//!   one-shot call, which is itself now implemented as plan-then-execute.
//! * [`PlanCache`] is a keyed pool of plans ([`crate::Communicator::plan_cached`]):
//!   planning runs at most once per distinct key per cache, with hit/miss
//!   counters so harnesses can assert and report reuse. Sweep workers park
//!   one cache per worker in their `pim_sim::SystemArena` (via the typed
//!   extension slot), so consecutive cells and iterations reuse plans with
//!   zero rebuild.
//!
//! Plans are immutable and `Send + Sync`: executing one builds a fresh
//! private [`CostSheet`] per call, so a warm plan cannot carry state
//! between executions (pinned by `tests/plan_reuse.rs`).

use std::collections::HashMap;
use std::sync::Arc;

use pim_sim::domain::LanePerm;
use pim_sim::dtype::ReduceKind;
use pim_sim::geometry::{DimmGeometry, EgId, LANES};
use pim_sim::{Breakdown, Category, PimSystem, TimeModel};

use crate::config::{OptLevel, Primitive};
use crate::engine::sheet::CostSheet;
use crate::engine::streaming::{lane_ranks, PermCache};
use crate::engine::{
    baseline, buffer_extents, logical_volumes, parallel, streaming, validate_host_in,
    validate_spec, BufferSpec, Execution,
};
use crate::error::{Error, Result};
use crate::hypercube::{build_clusters, CommGroup, DimMask, EgCluster, HypercubeManager};
use crate::report::CommReport;

/// Precomputed phase-B schedule of one cluster: the per-slot lane
/// rotations and the lane-rank table the streaming loops previously
/// recomputed on every call.
pub(crate) struct ClusterSched {
    /// `rotation(k)` for every within-part slot `k` (length `lane_count`).
    pub(crate) rotations: Vec<LanePerm>,
    /// Lane rank of every physical lane within its packed group.
    pub(crate) rank: [usize; LANES],
}

/// A fully planned collective: everything `engine::execute` derives from
/// `(primitive, opt, mask, spec, geometry, op, threads)` — validated
/// buffer geometry, the [`EgCluster`] decomposition, the [`PermCache`]
/// tables, the per-cluster phase-B rotation schedules, the baseline path's
/// group tables and the resolved thread fan-out — ready to execute any
/// number of times. See the module docs.
pub struct CollectivePlan {
    pub(crate) primitive: Primitive,
    pub(crate) opt: OptLevel,
    pub(crate) op: ReduceKind,
    pub(crate) spec: BufferSpec,
    pub(crate) geometry: DimmGeometry,
    /// Hypercube node count (equals the PE count).
    pub(crate) num_nodes: usize,
    /// Communication group size `N`.
    pub(crate) n: usize,
    /// Number of simultaneous groups.
    pub(crate) num_groups: usize,
    /// The entangled-group decomposition the streaming engine runs over.
    pub(crate) clusters: Vec<EgCluster>,
    /// Per-cluster EG partition for [`PimSystem::split_eg_views`],
    /// parallel to `clusters` — cloned once here instead of on every
    /// execute (ISSUE 10).
    pub(crate) parts: Vec<Vec<EgId>>,
    /// Per-cluster phase-B schedules, parallel to `clusters`.
    pub(crate) sched: Vec<ClusterSched>,
    /// Memoized phase-A/C permutation tables for every cluster shape.
    pub(crate) cache: PermCache,
    /// Group tables for the baseline host-memory path (empty when the plan
    /// never takes it).
    pub(crate) groups: Vec<CommGroup>,
    /// The dimension mask the plan was built for — kept so the verified
    /// execution path can re-derive group membership for host-side
    /// recompute during graceful degradation.
    pub(crate) mask: DimMask,
    /// Resolved cluster-level fan-out (auto already applied).
    pub(crate) cluster_threads: usize,
    /// Resolved per-group fan-out of the baseline path.
    pub(crate) group_threads: usize,
    /// MRAM extent to reserve on every PE before streaming.
    pub(crate) reserve_extent: usize,
}

impl CollectivePlan {
    /// Plans one collective against `manager`. This is the planning half
    /// of the old `engine::execute`: everything payload-independent runs
    /// here, once.
    pub(crate) fn build(
        manager: &HypercubeManager,
        opt: OptLevel,
        primitive: Primitive,
        mask: &DimMask,
        spec: &BufferSpec,
        op: ReduceKind,
        threads: usize,
    ) -> Result<Self> {
        let n = mask.group_size(manager.shape())?;
        let num_groups = manager.num_nodes() / n;
        validate_spec(primitive, spec, n)?;

        let clusters = build_clusters(manager, mask)?;

        // Only the streaming paths of the reordering primitives read the
        // rotation schedules and permutation tables; the baseline
        // host-memory path instead runs per communication group, so each
        // plan carries exactly the derived state its execution reads
        // (Scatter/Gather/Broadcast need neither).
        let reordering = matches!(
            primitive,
            Primitive::AlltoAll
                | Primitive::ReduceScatter
                | Primitive::AllReduce
                | Primitive::AllGather
                | Primitive::Reduce
        );
        let baseline_grouped = reordering && opt == OptLevel::Baseline;
        let (sched, cache) = if reordering && !baseline_grouped {
            (
                clusters
                    .iter()
                    .map(|c| ClusterSched {
                        rotations: (0..c.lane_count).map(|k| c.rotation(k)).collect(),
                        rank: lane_ranks(c),
                    })
                    .collect(),
                PermCache::for_clusters(&clusters),
            )
        } else {
            (Vec::new(), PermCache::for_clusters(&[]))
        };
        let groups = if baseline_grouped {
            manager.groups(mask)?
        } else {
            Vec::new()
        };

        let b = spec.bytes_per_node;
        let (src_len, dst_len) = buffer_extents(primitive, b, n);
        let src_end = if src_len > 0 {
            spec.src_offset + src_len
        } else {
            0
        };
        let dst_end = if dst_len > 0 {
            spec.dst_offset + dst_len
        } else {
            0
        };

        Ok(Self {
            primitive,
            opt,
            op,
            spec: *spec,
            geometry: *manager.geometry(),
            num_nodes: manager.num_nodes(),
            n,
            num_groups,
            cluster_threads: parallel::effective_threads(threads, clusters.len()),
            group_threads: parallel::effective_threads(threads, groups.len()),
            parts: clusters.iter().map(|c| c.egs.clone()).collect(),
            clusters,
            sched,
            cache,
            groups,
            mask: mask.clone(),
            reserve_extent: src_end.max(dst_end),
        })
    }

    /// The primitive this plan executes.
    pub fn primitive(&self) -> Primitive {
        self.primitive
    }

    /// The optimization level it runs at.
    pub fn opt(&self) -> OptLevel {
        self.opt
    }

    /// The buffer layout it was planned for.
    pub fn spec(&self) -> &BufferSpec {
        &self.spec
    }

    /// Communication group size `N`.
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// Number of simultaneous communication groups.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// The per-PE MRAM windows a run of this plan may write or
    /// destructively reorder: the validated source extent (phase-A
    /// reordering pre-rotates sources in place) and the destination
    /// extent — the same extents [`validate_spec`] checks for overlap.
    /// Rollback images need exactly these windows and nothing else.
    pub(crate) fn touched_regions(&self) -> [(usize, usize); 2] {
        let (src_len, dst_len) = buffer_extents(self.primitive, self.spec.bytes_per_node, self.n);
        [
            (self.spec.src_offset, src_len),
            (self.spec.dst_offset, dst_len),
        ]
    }

    /// Executes a primitive that needs no host-side buffers (AlltoAll,
    /// ReduceScatter, AllReduce, AllGather).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidHostData`] for rooted primitives (use
    /// [`CollectivePlan::execute_with_host`] /
    /// [`CollectivePlan::execute_to_host`]) and
    /// [`Error::ShapeSystemMismatch`] when `sys` has a different geometry
    /// than the plan.
    pub fn execute(&self, sys: &mut PimSystem) -> Result<CommReport> {
        match self.primitive {
            Primitive::Scatter | Primitive::Broadcast => Err(Error::InvalidHostData(format!(
                "{} requires host input buffers; use execute_with_host",
                self.primitive
            ))),
            Primitive::Gather | Primitive::Reduce => Err(Error::InvalidHostData(format!(
                "{} produces host output buffers; use execute_to_host",
                self.primitive
            ))),
            _ => self.run(sys, None).map(|e| e.report),
        }
    }

    /// Executes a host-rooted send primitive (Scatter, Broadcast) with one
    /// host buffer per group.
    ///
    /// # Errors
    ///
    /// As [`CollectivePlan::execute`], plus host-buffer count/size
    /// validation.
    pub fn execute_with_host(
        &self,
        sys: &mut PimSystem,
        host_in: &[Vec<u8>],
    ) -> Result<CommReport> {
        if !matches!(self.primitive, Primitive::Scatter | Primitive::Broadcast) {
            return Err(Error::InvalidHostData(format!(
                "{} takes no host input buffers",
                self.primitive
            )));
        }
        self.run(sys, Some(host_in)).map(|e| e.report)
    }

    /// Executes a host-rooted receive primitive (Gather, Reduce),
    /// returning one host buffer per group.
    ///
    /// # Errors
    ///
    /// As [`CollectivePlan::execute`].
    pub fn execute_to_host(&self, sys: &mut PimSystem) -> Result<(CommReport, Vec<Vec<u8>>)> {
        if !matches!(self.primitive, Primitive::Gather | Primitive::Reduce) {
            return Err(Error::InvalidHostData(format!(
                "{} produces no host output buffers",
                self.primitive
            )));
        }
        self.run(sys, None).map(|e| {
            (
                e.report,
                e.host_out.expect("rooted receive produces output"),
            )
        })
    }

    /// The execute half: payload-dependent validation, dispatch and cost
    /// application — everything the plan could not precompute.
    pub(crate) fn run(
        &self,
        sys: &mut PimSystem,
        host_in: Option<&[Vec<u8>]>,
    ) -> Result<Execution> {
        self.check_geometry(sys)?;
        validate_host_in(
            self.primitive,
            self.spec.bytes_per_node,
            self.n,
            self.num_groups,
            host_in,
        )?;
        self.run_with(sys, |sys, sheet| match self.primitive {
            Primitive::Broadcast => {
                streaming::broadcast(sys, sheet, self, host_in.unwrap());
                None
            }
            Primitive::Scatter => {
                streaming::scatter(sys, sheet, self, host_in.unwrap());
                None
            }
            Primitive::Gather => Some(streaming::gather(sys, sheet, self)),
            _ if self.opt == OptLevel::Baseline => baseline::run(sys, sheet, self),
            Primitive::AlltoAll => {
                streaming::alltoall(sys, sheet, self);
                None
            }
            Primitive::ReduceScatter => {
                streaming::reduce_scatter(sys, sheet, self);
                None
            }
            Primitive::AllReduce => {
                streaming::all_reduce(sys, sheet, self);
                None
            }
            Primitive::AllGather => {
                streaming::all_gather(sys, sheet, self);
                None
            }
            Primitive::Reduce => Some(streaming::reduce(sys, sheet, self)),
        })
    }

    /// The plan's geometry gate, shared by every execution entry point:
    /// a plan only runs against systems of the geometry it was built for.
    pub(crate) fn check_geometry(&self, sys: &PimSystem) -> Result<()> {
        if self.geometry != *sys.geometry() {
            return Err(Error::ShapeSystemMismatch {
                nodes: self.num_nodes,
                pes: sys.geometry().num_pes(),
            });
        }
        Ok(())
    }

    /// The shared execution envelope around a primitive dispatch: fault
    /// epoch + stuck scan, fresh private [`CostSheet`], extent
    /// reservation, cost application, corruption check and report
    /// assembly. [`CollectivePlan::run`] wraps the standard executors in
    /// it; the prepared tier ([`super::prepared`]) wraps the prestaged
    /// ones — both therefore charge and report bit-identically.
    ///
    /// Callers must have validated geometry and host buffers first
    /// ([`CollectivePlan::check_geometry`] / [`validate_host_in`]).
    pub(crate) fn run_with(
        &self,
        sys: &mut PimSystem,
        dispatch: impl FnOnce(&mut PimSystem, &mut CostSheet) -> Option<Vec<Vec<u8>>>,
    ) -> Result<Execution> {
        // Fault-layer execute boundary: each execution is one epoch, and a
        // stuck PE fails the collective up front — every PE participates in
        // every collective (`num_groups × n == num_nodes`), so a dead DPU
        // can never be silently skipped by dispatch.
        if let Some(fp) = sys.fault_plan() {
            let epoch = fp.begin_epoch();
            if let Some(pe) = (0..self.num_nodes as u32).find(|&pe| fp.pe_stuck(pe)) {
                return Err(Error::PeFailed { pe, epoch });
            }
        }

        let mut sheet = CostSheet::new(sys.geometry().channels());
        let before = sys.meter();

        // Reserve backing capacity for the full buffer extent on every PE
        // up front (functionally a no-op; nothing is materialized) so the
        // streaming loops never pay incremental MRAM reallocation copies.
        sys.reserve_extent_all(self.reserve_extent);

        let host_out: Option<Vec<Vec<u8>>> = dispatch(sys, &mut sheet);

        sheet.apply(sys);

        // Detection boundary: surface the first verification mismatch as a
        // typed error instead of a silent wrong answer. The attempt's cost
        // stays on the meter — a failed execution did real work, and the
        // verified retry loop reports it as recovery time.
        if let Some(ev) = sys.take_corruption() {
            return Err(Error::DataCorruption {
                pe: ev.pe,
                offset: ev.offset,
                expected: ev.expected,
                found: ev.found,
                epoch: ev.epoch,
            });
        }

        let breakdown = sys.meter().since(&before);
        let (bytes_in, bytes_out) = logical_volumes(
            self.primitive,
            self.spec.bytes_per_node,
            self.n,
            self.num_nodes,
            self.num_groups,
        );

        Ok(Execution {
            report: CommReport {
                primitive: self.primitive,
                opt: self.opt,
                breakdown,
                bytes_in,
                bytes_out,
                group_size: self.n,
                num_groups: self.num_groups,
            },
            host_out,
        })
    }

    /// Whether [`CollectivePlan::run`] dispatches this plan to the
    /// conventional host-memory baseline path (reordering primitives at
    /// `OptLevel::Baseline`; Scatter/Gather/Broadcast stream at every
    /// level).
    fn takes_baseline_path(&self) -> bool {
        self.opt == OptLevel::Baseline
            && !matches!(
                self.primitive,
                Primitive::Scatter | Primitive::Gather | Primitive::Broadcast
            )
    }

    /// Cost-only execution: walks the plan's precomputed cluster
    /// decomposition (or baseline group tables) and tallies the
    /// *identical integer* [`CostSheet`] a functional run would produce —
    /// without touching PE MRAM, host staging, or the fault layer.
    ///
    /// Both paths charge through the same per-primitive functions
    /// (`streaming::charge_cluster` / `baseline::charge`), so the sheets
    /// are equal by construction; converting the sheet to time with the
    /// same [`TimeModel`] then yields bit-identical modeled nanoseconds
    /// (see [`CollectivePlan::cost_only_report`]). Orders of magnitude
    /// faster than a functional run — this is what the autotuner and the
    /// extended design-space sweeps score candidates with.
    pub fn execute_cost_only(&self) -> CostSheet {
        let mut sheet = CostSheet::new(self.geometry.channels());
        if self.takes_baseline_path() {
            baseline::charge(&mut sheet, self);
        } else {
            streaming::charge(&mut sheet, self);
        }
        sheet
    }

    /// Charges everything one execution of this plan puts on a meter —
    /// the PE-reorder kernel launches (phase A/C) plus the converted
    /// [`CostSheet`] — replaying the functional path's exact per-category
    /// charge sequence so the accumulated `Breakdown` is bit-identical to
    /// `sys.meter().since(&before)` of a functional run on a fresh meter.
    pub(crate) fn charge_cost_only(&self, meter: &mut Breakdown, model: &TimeModel) {
        let sheet = self.execute_cost_only();
        // Replays `PimSystem::charge_pe_reorder`: one kernel launch + the
        // per-PE MRAM reorder pass. Only the streaming paths of the
        // reordering primitives run these kernels.
        let pe_reorder = |meter: &mut Breakdown, bytes: u64| {
            meter.charge(
                Category::PeModulation,
                model.pe_reorder_time(bytes) + model.kernel_launch_ns,
            );
        };
        if !self.takes_baseline_path() {
            let b = self.spec.bytes_per_node as u64;
            match self.primitive {
                // Phase A (pre) and phase C (post) reorder passes.
                Primitive::AlltoAll | Primitive::AllReduce => {
                    pe_reorder(meter, b);
                    pe_reorder(meter, b);
                }
                // Pre-reorder only: the result lands in final order.
                Primitive::ReduceScatter | Primitive::Reduce => pe_reorder(meter, b),
                // Post-reorder only, over the gathered extent.
                Primitive::AllGather => {
                    pe_reorder(meter, (self.n * self.spec.bytes_per_node) as u64)
                }
                Primitive::Scatter | Primitive::Gather | Primitive::Broadcast => {}
            }
        }
        sheet.apply_to(meter, model);
    }

    /// The [`CommReport`] a functional execution of this plan would
    /// return, computed analytically. The breakdown's modeled times are
    /// **bit-identical** to a functional run's (measured from a fresh
    /// meter — a new or `reset()` system) under the same `model`;
    /// property-tested in `tests/cost_only.rs`.
    pub fn cost_only_report(&self, model: &TimeModel) -> CommReport {
        let mut meter = Breakdown::new();
        self.charge_cost_only(&mut meter, model);
        let (bytes_in, bytes_out) = logical_volumes(
            self.primitive,
            self.spec.bytes_per_node,
            self.n,
            self.num_nodes,
            self.num_groups,
        );
        CommReport {
            primitive: self.primitive,
            opt: self.opt,
            breakdown: meter,
            bytes_in,
            bytes_out,
            group_size: self.n,
            num_groups: self.num_groups,
        }
    }
}

/// Everything a plan's derived state depends on. Two calls with equal keys
/// are served by one plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct PlanKey {
    primitive: Primitive,
    opt: OptLevel,
    op: ReduceKind,
    mask: DimMask,
    dims: Vec<usize>,
    geometry: DimmGeometry,
    spec: BufferSpec,
    threads: usize,
}

impl PlanKey {
    pub(crate) fn new(
        comm: &crate::Communicator,
        primitive: Primitive,
        mask: &DimMask,
        spec: &BufferSpec,
        op: ReduceKind,
    ) -> Self {
        Self {
            primitive,
            opt: comm.opt(),
            op,
            mask: mask.clone(),
            dims: comm.manager().shape().dims().to_vec(),
            geometry: *comm.manager().geometry(),
            spec: *spec,
            threads: comm.threads(),
        }
    }
}

/// A point-in-time copy of one [`PlanCache`]'s counters, for scoped
/// delta accounting: take a [`PlanCache::snapshot`] before a phase, take
/// another after, and [`PlanCacheStats::delta`] yields exactly that
/// phase's hits/misses/evictions — immune to other caches (and other
/// threads' caches) in the process. (The process-global counters this
/// replaced were removed in ISSUE 8.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups served by an already-built plan.
    pub hits: u64,
    /// Lookups that had to build (and insert) a plan.
    pub misses: u64,
    /// Plans evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Distinct plans pooled at snapshot time.
    pub len: usize,
}

impl PlanCacheStats {
    /// Counter movement since `earlier` (a previous snapshot of the same
    /// cache): hits/misses/evictions subtract, `len` stays this
    /// snapshot's current value.
    #[must_use]
    pub fn delta(&self, earlier: &PlanCacheStats) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            len: self.len,
        }
    }

    /// Counter sum across caches (`len` adds too): the aggregation the
    /// sweep harness uses to combine every worker's private cache into
    /// one pool-wide tally. Integer sums commute, so the result is
    /// independent of worker enumeration order.
    #[must_use]
    pub fn merge(&self, other: &PlanCacheStats) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            len: self.len + other.len,
        }
    }
}

/// One pooled plan plus its recency stamp for LRU eviction.
struct CacheEntry {
    plan: Arc<CollectivePlan>,
    /// Logical timestamp of the last hit or insert (monotone per cache).
    last_used: u64,
}

/// A keyed pool of [`CollectivePlan`]s: planning runs at most once per
/// distinct `(primitive, opt, mask, spec, geometry, op, threads)` per
/// cache. Sweep workers keep one per worker (parked in the
/// `pim_sim::SystemArena` extension slot between cells), so consecutive
/// cells and iterations reuse plans with zero rebuild. Purely an execution
/// cache: a warm plan executes byte-identically to a cold one.
///
/// By default the pool is unbounded (right for sweep workers, whose key
/// population is small and fixed). Multi-tenant deployments should bound
/// it with [`PlanCache::with_capacity`]: beyond `capacity` plans, the
/// least-recently-used entry is evicted (counted in
/// [`PlanCache::evictions`]). Eviction only drops the pooled `Arc` — plans
/// already handed out stay alive and valid.
#[derive(Default)]
pub struct PlanCache {
    plans: HashMap<PlanKey, CacheEntry>,
    /// `None` = unbounded.
    capacity: Option<usize>,
    /// Next logical timestamp.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `capacity` plans (clamped to at
    /// least 1), evicting the least-recently-used plan beyond that.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: Some(capacity.max(1)),
            ..Self::default()
        }
    }

    /// The configured capacity bound, `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of lookups served by an already-built plan.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that had to build (and insert) a plan.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of plans evicted by the LRU capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of distinct plans currently pooled.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// A point-in-time copy of this cache's counters (see
    /// [`PlanCacheStats::delta`]).
    pub fn snapshot(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.plans.len(),
        }
    }

    /// Fetches the plan for `key`, building it with `build` on a miss.
    /// Failed builds are not cached (and counted as neither hit nor miss).
    pub(crate) fn get_or_build(
        &mut self,
        key: PlanKey,
        build: impl FnOnce() -> Result<CollectivePlan>,
    ) -> Result<Arc<CollectivePlan>> {
        if let Some(entry) = self.plans.get_mut(&key) {
            entry.last_used = self.tick;
            self.tick += 1;
            self.hits += 1;
            return Ok(Arc::clone(&entry.plan));
        }
        let plan = Arc::new(build()?);
        self.misses += 1;
        self.plans.insert(
            key,
            CacheEntry {
                plan: Arc::clone(&plan),
                last_used: self.tick,
            },
        );
        self.tick += 1;
        if let Some(cap) = self.capacity {
            // O(len) scan per eviction: capacities are small (the point of
            // bounding is to stay small), and lookups stay O(1).
            while self.plans.len() > cap {
                let lru = self
                    // simlint: allow(map-iteration, reason = "min_by_key over strictly increasing last_used ticks is order-independent, and the eviction choice never reaches modeled bits")
                    .plans
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone());
                match lru {
                    Some(k) => {
                        self.plans.remove(&k);
                        self.evictions += 1;
                    }
                    None => break,
                }
            }
        }
        Ok(plan)
    }
}

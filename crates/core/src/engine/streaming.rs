//! The optimized PID-Comm execution paths (§V of the paper).
//!
//! Every primitive follows the same three-phase structure:
//!
//! 1. **PE-assisted reordering** (phase A): each PE locally permutes its
//!    chunks so that, afterwards, every burst the host reads contains eight
//!    words with *distinct destinations* — one per lane.
//! 2. **Streaming host modulation** (phase B): the host reads bursts,
//!    applies a single register-level permutation (a byte-lane shuffle when
//!    cross-domain modulation applies, otherwise DT ∘ word-shift ∘ DT) and
//!    optionally a vertical SIMD reduction, then writes the register
//!    straight back to the destination entangled group. No host-memory
//!    staging.
//! 3. **PE-assisted reordering** (phase C): destination PEs fix up the
//!    local order of the received chunks.
//!
//! The index arithmetic for arbitrary groups: a communication group of size
//! `N` decomposes as `N = L × M` (lane ranks × entangled groups, see
//! [`EgCluster`]). A source PE with lane rank `i` pre-rotates the chunks
//! inside each destination-EG part by `i`, so the burst at part `m_d`,
//! slot `k` carries, in lane rank `i`, the chunk destined to lane rank
//! `(k + i) mod L` of EG `m_d`. Rotating the register by `k` aligns every
//! word with its destination lane, and the whole register is written to EG
//! `m_d` in one burst. Packed sibling instances (groups sharing the
//! entangled groups) rotate in lock-step inside the same register.

#![allow(clippy::needless_range_loop)] // loop indices drive offset math

use pim_sim::domain::{permute_lanes_raw, permute_words_host, transpose8x8, LanePerm};
use pim_sim::dtype::{fill_identity, reduce_bytes, DType, ReduceKind};
use pim_sim::geometry::BURST_BYTES;
use pim_sim::PimSystem;

use crate::config::{OptLevel, Primitive, Technique};
use crate::engine::sheet::CostSheet;
use crate::hypercube::EgCluster;

/// The per-PE pre-permutation of phase A: destination slot `m_d * l + k`
/// receives the chunk originally at `((k + i_src) % l) + l * m_d`.
fn pre_perm(i_src: usize, l: usize, m: usize) -> Vec<usize> {
    (0..l * m)
        .map(|p| {
            let (m_d, k) = (p / l, p % l);
            ((k + i_src) % l) + l * m_d
        })
        .collect()
}

/// The per-PE post-permutation of phase C: final slot `s = m_s * l + i_s`
/// receives the chunk that arrived at slot `m_s * l + ((i_dst - i_s) % l)`.
fn post_perm(i_dst: usize, l: usize, m: usize) -> Vec<usize> {
    (0..l * m)
        .map(|s| {
            let (m_s, i_s) = (s / l, s % l);
            m_s * l + ((i_dst + l - i_s) % l)
        })
        .collect()
}

/// Runs phase A over all clusters: every PE rotates its `n` chunks of
/// `chunk` bytes at `offset` according to its lane rank.
fn pre_reorder(sys: &mut PimSystem, clusters: &[EgCluster], offset: usize, chunk: usize) {
    let geom = *sys.geometry();
    for c in clusters {
        let (l, m) = (c.lane_count, c.eg_count());
        for g in &c.groups {
            for (i_src, &lane) in g.lanes.iter().enumerate() {
                let perm = pre_perm(i_src, l, m);
                for eg in &c.egs {
                    let pe = geom.pe_of(*eg, lane);
                    sys.pe_mut(pe).permute_blocks(offset, chunk, l * m, &perm);
                }
            }
        }
    }
}

/// Runs phase C over all clusters at `offset`.
fn post_reorder(sys: &mut PimSystem, clusters: &[EgCluster], offset: usize, chunk: usize) {
    let geom = *sys.geometry();
    for c in clusters {
        let (l, m) = (c.lane_count, c.eg_count());
        for g in &c.groups {
            for (i_dst, &lane) in g.lanes.iter().enumerate() {
                let perm = post_perm(i_dst, l, m);
                for eg in &c.egs {
                    let pe = geom.pe_of(*eg, lane);
                    sys.pe_mut(pe).permute_blocks(offset, chunk, l * m, &perm);
                }
            }
        }
    }
}

/// Host-side modulation of one non-arithmetic block: a single byte-lane
/// shuffle when cross-domain modulation is enabled, otherwise the
/// DT ∘ word-shift ∘ DT sequence (staged through host memory when
/// in-register modulation is disabled).
fn modulate(
    block: &mut [u8; BURST_BYTES],
    sigma: &LanePerm,
    primitive: Primitive,
    opt: OptLevel,
    sheet: &mut CostSheet,
) {
    if opt.enables(Technique::CrossDomain, primitive) {
        permute_lanes_raw(block, sigma);
        sheet.shuffle_blocks += 1;
    } else {
        transpose8x8(block);
        permute_words_host(block, sigma);
        transpose8x8(block);
        sheet.dt_blocks += 2;
        sheet.shuffle_blocks += 1;
        if !opt.enables(Technique::InRegister, primitive) {
            // Spill + reload around the host-memory modulation pass.
            sheet.stream_bytes += 2 * BURST_BYTES as u64;
        }
    }
}

/// Precomputed per-slot rotations of a cluster.
fn rotations(c: &EgCluster) -> Vec<LanePerm> {
    (0..c.lane_count).map(|k| c.rotation(k)).collect()
}

/// AlltoAll (§V-A, Fig. 7d).
pub fn alltoall(
    sys: &mut PimSystem,
    sheet: &mut CostSheet,
    clusters: &[EgCluster],
    src: usize,
    dst: usize,
    bytes_per_node: usize,
    opt: OptLevel,
) {
    let p = Primitive::AlltoAll;
    pre_reorder_phase(sys, clusters, src, bytes_per_node);

    for c in clusters {
        let (l, m) = (c.lane_count, c.eg_count());
        let n = l * m;
        let chunk = bytes_per_node / n;
        let words = chunk / 8;
        let sigmas = rotations(c);
        for m_s in 0..m {
            for m_d in 0..m {
                for k in 0..l {
                    for w in 0..words {
                        let off_s = src + (m_d * l + k) * chunk + w * 8;
                        let off_d = dst + (m_s * l + k) * chunk + w * 8;
                        let mut block = sys.read_burst(c.egs[m_s], off_s);
                        sheet.streamed(c.channels[m_s], BURST_BYTES as u64);
                        modulate(&mut block, &sigmas[k], p, opt, sheet);
                        sys.write_burst(c.egs[m_d], off_d, &block);
                        sheet.streamed(c.channels[m_d], BURST_BYTES as u64);
                    }
                }
            }
        }
    }
    sheet.transfer_phases += 1;

    post_reorder(sys, clusters, dst, bytes_per_node / group_size(clusters));
    sys.charge_pe_reorder(bytes_per_node as u64);
}

/// Chunk-granularity group size shared by all clusters of one call.
fn group_size(clusters: &[EgCluster]) -> usize {
    clusters[0].group_size()
}

fn pre_reorder_phase(
    sys: &mut PimSystem,
    clusters: &[EgCluster],
    src: usize,
    bytes_per_node: usize,
) {
    let chunk = bytes_per_node / group_size(clusters);
    pre_reorder(sys, clusters, src, chunk);
    sys.charge_pe_reorder(bytes_per_node as u64);
}

/// Reduces one burst into `acc` after aligning it with rotation `sigma`.
/// For 8-bit element types the whole step stays in the raw domain (the
/// host can interpret single bytes without domain transfer, §V-C);
/// otherwise the block is domain-transferred first.
#[allow(clippy::too_many_arguments)]
fn align_and_reduce(
    block: &mut [u8; BURST_BYTES],
    acc: &mut [u8],
    sigma: &LanePerm,
    dtype: DType,
    op: ReduceKind,
    primitive: Primitive,
    opt: OptLevel,
    sheet: &mut CostSheet,
) {
    if dtype.is_byte_sized() {
        permute_lanes_raw(block, sigma);
    } else {
        transpose8x8(block);
        permute_words_host(block, sigma);
        sheet.dt_blocks += 1;
    }
    sheet.shuffle_blocks += 1;
    reduce_bytes(op, dtype, acc, block);
    sheet.reduce_blocks += 1;
    if !opt.enables(Technique::InRegister, primitive) {
        sheet.stream_bytes += 2 * BURST_BYTES as u64;
    }
}

/// ReduceScatter (§V-B2, Fig. 8b).
#[allow(clippy::too_many_arguments)]
pub fn reduce_scatter(
    sys: &mut PimSystem,
    sheet: &mut CostSheet,
    clusters: &[EgCluster],
    src: usize,
    dst: usize,
    bytes_per_node: usize,
    dtype: DType,
    op: ReduceKind,
    opt: OptLevel,
) {
    let p = Primitive::ReduceScatter;
    pre_reorder_phase(sys, clusters, src, bytes_per_node);

    for c in clusters {
        let (l, m) = (c.lane_count, c.eg_count());
        let n = l * m;
        let chunk = bytes_per_node / n;
        let words = chunk / 8;
        let sigmas = rotations(c);
        for m_d in 0..m {
            for w in 0..words {
                let mut acc = [0u8; BURST_BYTES];
                fill_identity(op, dtype, &mut acc);
                for m_s in 0..m {
                    for k in 0..l {
                        let off_s = src + (m_d * l + k) * chunk + w * 8;
                        let mut block = sys.read_burst(c.egs[m_s], off_s);
                        sheet.streamed(c.channels[m_s], BURST_BYTES as u64);
                        align_and_reduce(
                            &mut block, &mut acc, &sigmas[k], dtype, op, p, opt, sheet,
                        );
                    }
                }
                if !dtype.is_byte_sized() {
                    transpose8x8(&mut acc);
                    sheet.dt_blocks += 1;
                }
                sys.write_burst(c.egs[m_d], dst + w * 8, &acc);
                sheet.streamed(c.channels[m_d], BURST_BYTES as u64);
            }
        }
    }
    sheet.transfer_phases += 1;
}

/// AllReduce (§V-B3, Fig. 8c): ReduceScatter's reduction phase fused with
/// AllGather's distribution phase — the reduced registers are scattered to
/// all PEs without a round-trip through PIM memory.
#[allow(clippy::too_many_arguments)]
pub fn all_reduce(
    sys: &mut PimSystem,
    sheet: &mut CostSheet,
    clusters: &[EgCluster],
    src: usize,
    dst: usize,
    bytes_per_node: usize,
    dtype: DType,
    op: ReduceKind,
    opt: OptLevel,
) {
    let p = Primitive::AllReduce;
    pre_reorder_phase(sys, clusters, src, bytes_per_node);

    for c in clusters {
        let (l, m) = (c.lane_count, c.eg_count());
        let n = l * m;
        let chunk = bytes_per_node / n;
        let words = chunk / 8;
        let sigmas = rotations(c);

        // Reduction phase: one accumulator region per destination EG.
        let mut accs: Vec<Vec<u8>> = Vec::with_capacity(m);
        for m_d in 0..m {
            let mut acc_region = vec![0u8; words * BURST_BYTES];
            fill_identity(op, dtype, &mut acc_region);
            for w in 0..words {
                let acc = &mut acc_region[w * BURST_BYTES..(w + 1) * BURST_BYTES];
                for m_s in 0..m {
                    for k in 0..l {
                        let off_s = src + (m_d * l + k) * chunk + w * 8;
                        let mut block = sys.read_burst(c.egs[m_s], off_s);
                        sheet.streamed(c.channels[m_s], BURST_BYTES as u64);
                        align_and_reduce(&mut block, acc, &sigmas[k], dtype, op, p, opt, sheet);
                    }
                }
            }
            accs.push(acc_region);
        }

        // Distribution phase: domain-transfer each reduced register once,
        // then fan it out with byte-lane rotations.
        for (m_v, acc_region) in accs.iter().enumerate() {
            for w in 0..words {
                let mut base = [0u8; BURST_BYTES];
                base.copy_from_slice(&acc_region[w * BURST_BYTES..(w + 1) * BURST_BYTES]);
                if !dtype.is_byte_sized() {
                    transpose8x8(&mut base);
                    sheet.dt_blocks += 1;
                }
                for m_d in 0..m {
                    for k in 0..l {
                        let mut blk = base;
                        permute_lanes_raw(&mut blk, &sigmas[k]);
                        sheet.shuffle_blocks += 1;
                        if !opt.enables(Technique::InRegister, p) {
                            sheet.stream_bytes += 2 * BURST_BYTES as u64;
                        }
                        sys.write_burst(c.egs[m_d], dst + (m_v * l + k) * chunk + w * 8, &blk);
                        sheet.streamed(c.channels[m_d], BURST_BYTES as u64);
                    }
                }
            }
        }
    }
    sheet.transfer_phases += 1;

    post_reorder(sys, clusters, dst, bytes_per_node / group_size(clusters));
    sys.charge_pe_reorder(bytes_per_node as u64);
}

/// AllGather (§V-B1, Fig. 8a).
#[allow(clippy::too_many_arguments)]
pub fn all_gather(
    sys: &mut PimSystem,
    sheet: &mut CostSheet,
    clusters: &[EgCluster],
    src: usize,
    dst: usize,
    bytes_per_node: usize,
    opt: OptLevel,
) {
    let p = Primitive::AllGather;
    let chunk = bytes_per_node;
    let words = chunk / 8;

    for c in clusters {
        let (l, m) = (c.lane_count, c.eg_count());
        let sigmas = rotations(c);
        for m_s in 0..m {
            for w in 0..words {
                let base = sys.read_burst(c.egs[m_s], src + w * 8);
                sheet.streamed(c.channels[m_s], BURST_BYTES as u64);
                for m_d in 0..m {
                    for k in 0..l {
                        let mut blk = base;
                        modulate(&mut blk, &sigmas[k], p, opt, sheet);
                        sys.write_burst(c.egs[m_d], dst + (m_s * l + k) * chunk + w * 8, &blk);
                        sheet.streamed(c.channels[m_d], BURST_BYTES as u64);
                    }
                }
            }
        }
    }
    sheet.transfer_phases += 1;

    post_reorder(sys, clusters, dst, chunk);
    let n = group_size(clusters);
    sys.charge_pe_reorder((n * chunk) as u64);
}

/// Scatter (§V-B4: the write-back half of ReduceScatter, host as root).
/// `host_in` is indexed by group id; each entry holds `N * bytes_per_node`
/// bytes laid out by destination rank.
#[allow(clippy::too_many_arguments)]
pub fn scatter(
    sys: &mut PimSystem,
    sheet: &mut CostSheet,
    clusters: &[EgCluster],
    dst: usize,
    bytes_per_node: usize,
    host_in: &[Vec<u8>],
    opt: OptLevel,
) {
    let p = Primitive::Scatter;
    let words = bytes_per_node / 8;
    for c in clusters {
        let (l, m) = (c.lane_count, c.eg_count());
        for m_d in 0..m {
            for w in 0..words {
                let mut block = [0u8; BURST_BYTES];
                for g in &c.groups {
                    for (i, &lane) in g.lanes.iter().enumerate() {
                        let rank = i + l * m_d;
                        let off = rank * bytes_per_node + w * 8;
                        block[lane * 8..lane * 8 + 8]
                            .copy_from_slice(&host_in[g.group_id][off..off + 8]);
                    }
                }
                sheet.stream_bytes += BURST_BYTES as u64;
                if !opt.enables(Technique::InRegister, p) {
                    // Conventional path first rearranges the host buffer in
                    // host memory before transferring.
                    sheet.scatter_bytes += BURST_BYTES as u64;
                }
                transpose8x8(&mut block);
                sheet.dt_blocks += 1;
                sys.write_burst(c.egs[m_d], dst + w * 8, &block);
                sheet.streamed(c.channels[m_d], BURST_BYTES as u64);
            }
        }
    }
    sheet.transfer_phases += 1;
}

/// Gather (§V-B4: AllGather's read step followed by domain transfer).
/// Returns host buffers indexed by group id, `N * bytes_per_node` each.
pub fn gather(
    sys: &mut PimSystem,
    sheet: &mut CostSheet,
    clusters: &[EgCluster],
    num_groups: usize,
    src: usize,
    bytes_per_node: usize,
    opt: OptLevel,
) -> Vec<Vec<u8>> {
    let p = Primitive::Gather;
    let words = bytes_per_node / 8;
    let mut host_out: Vec<Vec<u8>> = Vec::new();
    let mut sized = vec![0usize; num_groups];
    for c in clusters {
        for g in &c.groups {
            sized[g.group_id] = c.group_size() * bytes_per_node;
        }
    }
    host_out.extend(sized.iter().map(|&s| vec![0u8; s]));

    for c in clusters {
        let (l, m) = (c.lane_count, c.eg_count());
        for m_s in 0..m {
            for w in 0..words {
                let mut block = sys.read_burst(c.egs[m_s], src + w * 8);
                sheet.streamed(c.channels[m_s], BURST_BYTES as u64);
                transpose8x8(&mut block);
                sheet.dt_blocks += 1;
                if !opt.enables(Technique::InRegister, p) {
                    sheet.scatter_bytes += BURST_BYTES as u64;
                }
                for g in &c.groups {
                    for (i, &lane) in g.lanes.iter().enumerate() {
                        let rank = i + l * m_s;
                        let off = rank * bytes_per_node + w * 8;
                        host_out[g.group_id][off..off + 8]
                            .copy_from_slice(&block[lane * 8..lane * 8 + 8]);
                    }
                }
                sheet.stream_bytes += BURST_BYTES as u64;
            }
        }
    }
    sheet.transfer_phases += 1;
    host_out
}

/// Reduce (§V-B4: the reduction half of ReduceScatter with the host as
/// root). Returns per-group reduced vectors of `bytes_per_node` bytes.
#[allow(clippy::too_many_arguments)]
pub fn reduce(
    sys: &mut PimSystem,
    sheet: &mut CostSheet,
    clusters: &[EgCluster],
    num_groups: usize,
    src: usize,
    bytes_per_node: usize,
    dtype: DType,
    op: ReduceKind,
    opt: OptLevel,
) -> Vec<Vec<u8>> {
    let p = Primitive::Reduce;
    pre_reorder_phase(sys, clusters, src, bytes_per_node);

    let mut host_out: Vec<Vec<u8>> = vec![vec![0u8; bytes_per_node]; num_groups];

    for c in clusters {
        let (l, m) = (c.lane_count, c.eg_count());
        let n = l * m;
        let chunk = bytes_per_node / n;
        let words = chunk / 8;
        let sigmas = rotations(c);
        for m_d in 0..m {
            for w in 0..words {
                let mut acc = [0u8; BURST_BYTES];
                fill_identity(op, dtype, &mut acc);
                for m_s in 0..m {
                    for k in 0..l {
                        let off_s = src + (m_d * l + k) * chunk + w * 8;
                        let mut block = sys.read_burst(c.egs[m_s], off_s);
                        sheet.streamed(c.channels[m_s], BURST_BYTES as u64);
                        align_and_reduce(
                            &mut block, &mut acc, &sigmas[k], dtype, op, p, opt, sheet,
                        );
                    }
                }
                // For 8-bit elements the accumulator lives in the raw
                // domain; bring it to word order for the host buffer (a
                // free reinterpretation for the model: no DT charged).
                if dtype.is_byte_sized() {
                    transpose8x8(&mut acc);
                }
                for g in &c.groups {
                    for (i, &lane) in g.lanes.iter().enumerate() {
                        let rank = i + l * m_d;
                        let off = rank * chunk + w * 8;
                        host_out[g.group_id][off..off + 8]
                            .copy_from_slice(&acc[lane * 8..lane * 8 + 8]);
                    }
                }
                sheet.stream_bytes += BURST_BYTES as u64;
            }
        }
    }
    sheet.transfer_phases += 1;
    host_out
}

/// Broadcast (§V-B4): the native driver path — one domain transfer per
/// block, reused for every destination PE of the group. No technique
/// applies; it is already bus-bound (Table II, §VIII-B).
pub fn broadcast(
    sys: &mut PimSystem,
    sheet: &mut CostSheet,
    clusters: &[EgCluster],
    dst: usize,
    bytes_per_node: usize,
    host_in: &[Vec<u8>],
) {
    let words = bytes_per_node / 8;
    for c in clusters {
        let m = c.eg_count();
        for w in 0..words {
            let mut block = [0u8; BURST_BYTES];
            for g in &c.groups {
                for &lane in &g.lanes {
                    block[lane * 8..lane * 8 + 8]
                        .copy_from_slice(&host_in[g.group_id][w * 8..w * 8 + 8]);
                }
            }
            sheet.stream_bytes += BURST_BYTES as u64;
            transpose8x8(&mut block);
            sheet.dt_blocks += 1;
            for m_d in 0..m {
                sys.write_burst(c.egs[m_d], dst + w * 8, &block);
                sheet.streamed(c.channels[m_d], BURST_BYTES as u64);
            }
        }
    }
    sheet.transfer_phases += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre- and post-permutations must compose with the burst-level
    /// rotation schedule to the AlltoAll permutation; here we check their
    /// standalone algebra.
    #[test]
    fn pre_perm_is_a_permutation_for_all_shapes() {
        for l in [1usize, 2, 4, 8] {
            for m in [1usize, 2, 3, 4, 16] {
                for i_src in 0..l {
                    let p = pre_perm(i_src, l, m);
                    let mut seen = vec![false; l * m];
                    for &x in &p {
                        assert!(!seen[x], "l={l} m={m} i={i_src}");
                        seen[x] = true;
                    }
                }
            }
        }
    }

    #[test]
    fn post_perm_is_a_permutation_for_all_shapes() {
        for l in [1usize, 2, 4, 8] {
            for m in [1usize, 2, 3, 4, 16] {
                for i_dst in 0..l {
                    let p = post_perm(i_dst, l, m);
                    let mut seen = vec![false; l * m];
                    for &x in &p {
                        assert!(!seen[x], "l={l} m={m} i={i_dst}");
                        seen[x] = true;
                    }
                }
            }
        }
    }

    #[test]
    fn pre_perm_keeps_parts_and_rotates_within() {
        // Slot m_d*l+k must source a chunk of the same destination-EG part.
        let (l, m) = (4usize, 3usize);
        for i_src in 0..l {
            let p = pre_perm(i_src, l, m);
            for (slot, &src) in p.iter().enumerate() {
                assert_eq!(slot / l, src / l, "chunks never cross parts");
                assert_eq!((slot % l + i_src) % l, src % l, "rotation by lane rank");
            }
        }
    }

    #[test]
    fn pre_perm_with_zero_lane_rank_is_identity() {
        let p = pre_perm(0, 8, 4);
        assert!(p.iter().enumerate().all(|(i, &x)| i == x));
        // ...and so is the post-permutation for destination lane rank 0
        // only at slots whose source lane rank is 0.
        let q = post_perm(0, 1, 16);
        assert!(
            q.iter().enumerate().all(|(i, &x)| i == x),
            "l=1 is trivially identity"
        );
    }

    #[test]
    fn post_perm_inverts_arrival_order() {
        // If chunk from source rank s arrives at slot m_s*l + (i_d - i_s)%l,
        // the post-permutation must place it at slot s = m_s*l + i_s.
        let (l, m) = (8usize, 2usize);
        for i_d in 0..l {
            let p = post_perm(i_d, l, m);
            for m_s in 0..m {
                for i_s in 0..l {
                    let arrival = m_s * l + ((i_d + l - i_s) % l);
                    let final_slot = m_s * l + i_s;
                    assert_eq!(p[final_slot], arrival);
                }
            }
        }
    }
}

// L5 bad: undocumented, unallowlisted unsafe.
pub fn read_lane(p: *const u8) -> u8 {
    unsafe { *p }
}

//! Micro-benchmarks of the library itself: the domain-transfer kernels that
//! every burst passes through, plan construction, and the end-to-end
//! simulated collectives (wall-clock of the functional engine, useful for
//! tracking simulator performance regressions).
//!
//! Plain `harness = false` timing loops (the container has no criterion):
//! run with `cargo bench -p pidcomm-bench`.

use std::hint::black_box;
use std::time::Instant;

use pidcomm::hypercube::{build_clusters, HypercubeManager};
use pidcomm::{BufferSpec, Communicator, DimMask, HypercubeShape, OptLevel, Primitive};
use pidcomm_bench::{run_primitive, PrimSetup};
use pim_sim::domain::{permute_lanes_raw, rotation_within, transpose8x8};
use pim_sim::dtype::{reduce_bytes, DType, ReduceKind};
use pim_sim::kernels::{self, reference as oracle};
use pim_sim::DimmGeometry;

/// Times `f` over enough iterations to fill ~50 ms and prints ns/iter.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm up and estimate.
    let t0 = Instant::now();
    let mut warm = 0u64;
    while t0.elapsed().as_millis() < 5 {
        f();
        warm += 1;
    }
    let iters = (warm * 10).max(10);
    let t1 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = t1.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<44} {ns:>14.1} ns/iter ({iters} iters)");
}

fn bench_domain_ops() {
    let mut block = [0x5Au8; 64];
    bench("domain/transpose8x8", || {
        transpose8x8(black_box(&mut block))
    });

    let perm = rotation_within(&[0, 1, 2, 3, 4, 5, 6, 7], 3);
    bench("domain/permute_lanes_raw", || {
        permute_lanes_raw(black_box(&mut block), &perm)
    });

    let mut acc = [1u8; 64];
    let src = [2u8; 64];
    bench("domain/reduce_u32_sum", || {
        reduce_bytes(
            ReduceKind::Sum,
            DType::U32,
            black_box(&mut acc),
            black_box(&src),
        )
    });
}

/// The seed's scalar per-element reduction loop, kept as the baseline the
/// chunked-lane `reduce_bytes` is measured against.
fn reduce_scalar_reference(op: ReduceKind, dtype: DType, acc: &mut [u8], src: &[u8]) {
    macro_rules! scalar {
        ($ty:ty) => {{
            const W: usize = core::mem::size_of::<$ty>();
            for (a, s) in acc.chunks_exact_mut(W).zip(src.chunks_exact(W)) {
                let av = <$ty>::from_le_bytes(a.try_into().unwrap());
                let sv = <$ty>::from_le_bytes(s.try_into().unwrap());
                let r = match op {
                    ReduceKind::Sum => av.wrapping_add(sv),
                    ReduceKind::Min => av.min(sv),
                    ReduceKind::Max => av.max(sv),
                    ReduceKind::Or => av | sv,
                    ReduceKind::And => av & sv,
                    ReduceKind::Xor => av ^ sv,
                };
                a.copy_from_slice(&r.to_le_bytes());
            }
        }};
    }
    match dtype {
        DType::U8 => scalar!(u8),
        DType::I8 => scalar!(i8),
        DType::U16 => scalar!(u16),
        DType::I16 => scalar!(i16),
        DType::U32 => scalar!(u32),
        DType::I32 => scalar!(i32),
        DType::U64 => scalar!(u64),
        DType::I64 => scalar!(i64),
    }
}

fn bench_reduce_kernels() {
    // Row-sized buffers (one 64 KiB chunk): the vectorized chunked-lane
    // loop vs the seed's scalar per-element loop.
    let mut acc = vec![1u8; 64 * 1024];
    let src = vec![2u8; 64 * 1024];
    for (name, op, dt) in [
        ("sum_u32", ReduceKind::Sum, DType::U32),
        ("sum_u8", ReduceKind::Sum, DType::U8),
        ("min_i16", ReduceKind::Min, DType::I16),
        ("xor_u64", ReduceKind::Xor, DType::U64),
    ] {
        bench(&format!("reduce64k/{name}"), || {
            reduce_bytes(op, dt, black_box(&mut acc), black_box(&src))
        });
        bench(&format!("reduce64k/{name}_scalar_ref"), || {
            reduce_scalar_reference(op, dt, black_box(&mut acc), black_box(&src))
        });
    }
}

/// The `pim_sim::kernels` typed-lane library vs its scalar oracles —
/// every entry point's before/after pair, at the shapes the apps run
/// (the MLP f=4096 partial vector, GNN f=64 feature rows, BFS/CC bitmap
/// and label arrays, DLRM index chunks).
fn bench_lane_kernels() {
    // Codecs at one 64 KiB row.
    let bytes = vec![0x5Au8; 64 * 1024];
    let mut i32s = vec![0i32; 16 * 1024];
    bench("kernels/decode_i32_64k", || {
        kernels::decode_i32(black_box(&bytes), black_box(&mut i32s))
    });
    bench("kernels/decode_i32_64k_scalar_ref", || {
        oracle::decode_i32_scalar_ref(black_box(&bytes), black_box(&mut i32s))
    });
    let mut out = vec![0u8; 64 * 1024];
    bench("kernels/encode_i32_64k", || {
        kernels::encode_i32(black_box(&i32s), black_box(&mut out))
    });
    bench("kernels/encode_i32_64k_scalar_ref", || {
        oracle::encode_i32_scalar_ref(black_box(&i32s), black_box(&mut out))
    });
    let mut u32s = vec![0u32; 16 * 1024];
    bench("kernels/decode_u32_64k", || {
        kernels::decode_u32(black_box(&bytes), black_box(&mut u32s))
    });
    bench("kernels/decode_u32_64k_scalar_ref", || {
        oracle::decode_u32_scalar_ref(black_box(&bytes), black_box(&mut u32s))
    });
    bench("kernels/encode_u32_64k", || {
        kernels::encode_u32(black_box(&u32s), black_box(&mut out))
    });
    bench("kernels/encode_u32_64k_scalar_ref", || {
        oracle::encode_u32_scalar_ref(black_box(&u32s), black_box(&mut out))
    });
    let mut u64s = vec![0u64; 8 * 1024];
    bench("kernels/decode_u64_64k", || {
        kernels::decode_u64(black_box(&bytes), black_box(&mut u64s))
    });
    bench("kernels/decode_u64_64k_scalar_ref", || {
        oracle::decode_u64_scalar_ref(black_box(&bytes), black_box(&mut u64s))
    });
    bench("kernels/encode_u64_64k", || {
        kernels::encode_u64(black_box(&u64s), black_box(&mut out))
    });
    bench("kernels/encode_u64_64k_scalar_ref", || {
        oracle::encode_u64_scalar_ref(black_box(&u64s), black_box(&mut out))
    });

    // Narrow sign-extending views (the GNN int8 path, 16 KiB elements).
    let narrow = vec![0xA5u8; 16 * 1024];
    bench("kernels/decode_sext_i8_16k", || {
        kernels::decode_sext(DType::I8, black_box(&narrow), black_box(&mut i32s))
    });
    bench("kernels/decode_sext_i8_16k_scalar_ref", || {
        oracle::decode_sext_scalar_ref(DType::I8, black_box(&narrow), black_box(&mut i32s))
    });
    let mut nout = vec![0u8; 16 * 1024];
    bench("kernels/encode_trunc_i8_16k", || {
        kernels::encode_trunc(DType::I8, black_box(&i32s), black_box(&mut nout))
    });
    bench("kernels/encode_trunc_i8_16k_scalar_ref", || {
        oracle::encode_trunc_scalar_ref(DType::I8, black_box(&i32s), black_box(&mut nout))
    });

    // Accumulates at the MLP partial-vector length (f = 4096).
    let mut acc = vec![1i32; 4096];
    let xs: Vec<i32> = (0..4096i32).map(|i| i - 2048).collect();
    let xbytes = {
        let mut b = vec![0u8; 4096 * 4];
        kernels::encode_i32(&xs, &mut b);
        b
    };
    bench("kernels/axpy_i32_4096", || {
        kernels::axpy_i32(black_box(&mut acc), black_box(3), black_box(&xs))
    });
    bench("kernels/axpy_i32_4096_scalar_ref", || {
        oracle::axpy_i32_scalar_ref(black_box(&mut acc), black_box(3), black_box(&xs))
    });
    bench("kernels/axpy_i32_bytes_4096", || {
        kernels::axpy_i32_bytes(black_box(&mut acc), black_box(3), black_box(&xbytes))
    });
    bench("kernels/axpy_i32_bytes_4096_scalar_ref", || {
        oracle::axpy_i32_bytes_scalar_ref(black_box(&mut acc), black_box(3), black_box(&xbytes))
    });
    for dt in [DType::I8, DType::I32] {
        bench(&format!("kernels/axpy_wrap_{dt}_4096"), || {
            kernels::axpy_wrap(dt, black_box(&mut acc), black_box(3), black_box(&xs))
        });
        bench(&format!("kernels/axpy_wrap_{dt}_4096_scalar_ref"), || {
            oracle::axpy_wrap_scalar_ref(dt, black_box(&mut acc), black_box(3), black_box(&xs))
        });
        bench(&format!("kernels/add_wrap_{dt}_4096"), || {
            kernels::add_wrap(dt, black_box(&mut acc), black_box(&xs))
        });
        bench(&format!("kernels/add_wrap_{dt}_4096_scalar_ref"), || {
            oracle::add_wrap_scalar_ref(dt, black_box(&mut acc), black_box(&xs))
        });
    }

    // Maps.
    bench("kernels/relu_i32_4096", || {
        kernels::relu_i32(black_box(&mut acc))
    });
    bench("kernels/relu_i32_4096_scalar_ref", || {
        oracle::relu_i32_scalar_ref(black_box(&mut acc))
    });
    bench("kernels/max_i32_4096", || {
        kernels::max_i32(black_box(&mut acc), black_box(&xs))
    });
    bench("kernels/max_i32_4096_scalar_ref", || {
        oracle::max_i32_scalar_ref(black_box(&mut acc), black_box(&xs))
    });

    // Bitmaps at the BFS LiveJournal-scale size (32k vertices -> 4 KiB).
    let mut bm = vec![0x10u8; 4096];
    let src = vec![0x01u8; 4096];
    bench("kernels/bitmap_or_4k", || {
        kernels::bitmap_or(black_box(&mut bm), black_box(&src))
    });
    bench("kernels/bitmap_or_4k_scalar_ref", || {
        oracle::bitmap_or_scalar_ref(black_box(&mut bm), black_box(&src))
    });
    let olds = vec![0x10u8; 4096];
    bench("kernels/new_bit_scan_4k", || {
        let mut sum = 0usize;
        kernels::for_each_new_bit(black_box(&bm), black_box(&olds), |v| sum += v);
        black_box(sum);
    });
    bench("kernels/new_bit_scan_4k_scalar_ref", || {
        let mut sum = 0usize;
        oracle::for_each_new_bit_scalar_ref(black_box(&bm), black_box(&olds), |v| sum += v);
        black_box(sum);
    });

    // Row scatter/gather at the GNN transpose shape (f=64 int32 rows,
    // 32 sub-column blocks of 2 elements).
    let gsrc = vec![0x42u8; 32 * 64 * 8];
    let mut gdst = vec![0u8; 32 * 64 * 8];
    bench("kernels/copy_rows_gnn_transpose", || {
        for blk in 0..32usize {
            kernels::copy_rows(
                black_box(&mut gdst),
                blk * 8,
                256,
                black_box(&gsrc),
                blk * 64 * 8,
                8,
                8,
                64,
            );
        }
    });
    bench("kernels/copy_rows_gnn_transpose_scalar_ref", || {
        for blk in 0..32usize {
            oracle::copy_rows_scalar_ref(
                black_box(&mut gdst),
                blk * 8,
                256,
                black_box(&gsrc),
                blk * 64 * 8,
                8,
                8,
                64,
            );
        }
    });
}

fn bench_planning() {
    for (dims, geom) in [
        (vec![32usize, 32], DimmGeometry::upmem_1024()),
        (vec![8, 16, 8], DimmGeometry::upmem_1024()),
    ] {
        let manager =
            HypercubeManager::new(HypercubeShape::new(dims.clone()).unwrap(), geom).unwrap();
        let mask: DimMask = DimMask::single(dims.len(), 0);
        bench(&format!("planning/build_clusters {dims:?}"), || {
            black_box(build_clusters(black_box(&manager), &mask).unwrap());
        });
    }
}

fn bench_collectives() {
    let setup = PrimSetup {
        geom: DimmGeometry::single_rank(),
        dims: vec![8, 8],
        mask: "10".into(),
        bytes_per_node: 8 * 8 * 16,
        dtype: pim_sim::DType::U64,
        model: pim_sim::TimeModel::upmem(),
        threads: 0,
    };
    for prim in [
        Primitive::AlltoAll,
        Primitive::ReduceScatter,
        Primitive::AllReduce,
        Primitive::AllGather,
    ] {
        for opt in [OptLevel::Baseline, OptLevel::Full] {
            bench(&format!("collectives_64pe/{}/{opt}", prim.abbrev()), || {
                black_box(run_primitive(black_box(&setup), prim, opt));
            });
        }
    }
}

fn bench_end_to_end() {
    let geom = DimmGeometry::upmem_256();
    let manager = HypercubeManager::new(HypercubeShape::new(vec![16, 16]).unwrap(), geom).unwrap();
    let comm = Communicator::new(manager);
    let mask: DimMask = "10".parse().unwrap();
    bench("end_to_end/allreduce_256pe_8kib", || {
        let mut sys = pim_sim::PimSystem::new(geom);
        for pe in geom.pes() {
            sys.pe_mut(pe).write(0, &[1u8; 8192]);
        }
        black_box(
            comm.all_reduce(
                &mut sys,
                &mask,
                &BufferSpec::new(0, 16384, 8192),
                ReduceKind::Sum,
            )
            .unwrap(),
        );
    });
}

fn main() {
    bench_domain_ops();
    bench_reduce_kernels();
    bench_lane_kernels();
    bench_planning();
    bench_collectives();
    bench_end_to_end();
}

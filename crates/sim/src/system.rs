//! The simulated PIM system: PEs + host bus + time meter.

use crate::cost::{Breakdown, Category, TimeModel};
use crate::geometry::{DimmGeometry, EgId, PeId, BURST_BYTES, LANES, LANE_BYTES};
use crate::pe::Pe;

/// A complete PIM-enabled DIMM system: the PE array, the physical geometry,
/// the calibrated time model and a running cost meter.
///
/// All *functional* operations (burst reads/writes, PE kernels) are provided
/// here; *timing* is charged explicitly by callers via [`PimSystem::charge`]
/// because the correct cost of a step depends on phase-level context
/// (channel parallelism, overlap) that only the collective engine knows.
///
/// # Examples
///
/// ```
/// use pim_sim::{DimmGeometry, PimSystem};
/// use pim_sim::geometry::{EgId, PeId};
///
/// let mut sys = PimSystem::new(DimmGeometry::single_rank());
/// sys.pe_mut(PeId(3)).write(0, &[42; 8]);
/// let burst = sys.read_burst(EgId(0), 0);
/// // Lane 3 contributed byte 42 to every beat.
/// assert_eq!(burst[3], 42);
/// assert_eq!(burst[8 + 3], 42);
/// ```
#[derive(Debug, Clone)]
pub struct PimSystem {
    geometry: DimmGeometry,
    model: TimeModel,
    pes: Vec<Pe>,
    meter: Breakdown,
}

impl PimSystem {
    /// Creates a system with the given geometry and the default
    /// [`TimeModel::upmem`] calibration.
    pub fn new(geometry: DimmGeometry) -> Self {
        Self::with_model(geometry, TimeModel::upmem())
    }

    /// Creates a system with an explicit time model.
    pub fn with_model(geometry: DimmGeometry, model: TimeModel) -> Self {
        let pes = vec![Pe::new(); geometry.num_pes()];
        Self {
            geometry,
            model,
            pes,
            meter: Breakdown::new(),
        }
    }

    /// The system's geometry.
    pub fn geometry(&self) -> &DimmGeometry {
        &self.geometry
    }

    /// The calibrated time model.
    pub fn model(&self) -> &TimeModel {
        &self.model
    }

    /// Shared access to a PE.
    pub fn pe(&self, pe: PeId) -> &Pe {
        &self.pes[pe.index()]
    }

    /// Mutable access to a PE.
    pub fn pe_mut(&mut self, pe: PeId) -> &mut Pe {
        &mut self.pes[pe.index()]
    }

    // ---- functional bus operations -------------------------------------

    /// Reads one 64-byte burst from entangled group `eg` at MRAM offset
    /// `offset`, in raw (PIM-domain) order: `out[beat*8 + lane]` is byte
    /// `offset + beat` of the PE at `lane`.
    ///
    /// The physical bus always moves whole bursts — there is no way to read
    /// a subset of lanes — which is why communication groups that underuse
    /// an entangled group waste bandwidth (§III-B).
    pub fn read_burst(&mut self, eg: EgId, offset: usize) -> [u8; BURST_BYTES] {
        let mut out = [0u8; BURST_BYTES];
        for lane in 0..LANES {
            let pe = self.geometry.pe_of(eg, lane);
            let bytes = self.pes[pe.index()].read(offset, LANE_BYTES);
            for (beat, &b) in bytes.iter().enumerate() {
                out[beat * LANES + lane] = b;
            }
        }
        out
    }

    /// Writes one 64-byte burst (raw order) to entangled group `eg` at
    /// MRAM offset `offset`.
    pub fn write_burst(&mut self, eg: EgId, offset: usize, block: &[u8; BURST_BYTES]) {
        for lane in 0..LANES {
            let pe = self.geometry.pe_of(eg, lane);
            let mut bytes = [0u8; LANE_BYTES];
            for (beat, b) in bytes.iter_mut().enumerate() {
                *b = block[beat * LANES + lane];
            }
            self.pes[pe.index()].write(offset, &bytes);
        }
    }

    /// Reads `len` bytes (a multiple of 8) starting at `offset` from every
    /// lane of `eg` as consecutive raw bursts.
    pub fn read_bursts(&mut self, eg: EgId, offset: usize, len: usize) -> Vec<u8> {
        assert_eq!(
            len % LANE_BYTES,
            0,
            "burst reads move multiples of 8 bytes per lane"
        );
        let mut out = Vec::with_capacity(len * LANES / LANE_BYTES);
        let mut off = offset;
        while off < offset + len {
            out.extend_from_slice(&self.read_burst(eg, off));
            off += LANE_BYTES;
        }
        out
    }

    // ---- metering -------------------------------------------------------

    /// Adds `ns` nanoseconds of cost in category `cat`.
    pub fn charge(&mut self, cat: Category, ns: f64) {
        self.meter.charge(cat, ns);
    }

    /// Current accumulated breakdown.
    pub fn meter(&self) -> Breakdown {
        self.meter
    }

    /// Resets the meter to zero and returns the previous value.
    pub fn take_meter(&mut self) -> Breakdown {
        core::mem::replace(&mut self.meter, Breakdown::new())
    }

    /// Charges a PE kernel: fixed launch overhead (to `Other`) plus the
    /// maximum per-PE execution time (to `Kernel`), since all PEs run in
    /// parallel and the host waits for the slowest.
    pub fn run_kernel(&mut self, max_pe_ns: f64) {
        let launch = self.model.kernel_launch_ns;
        self.charge(Category::Other, launch);
        self.charge(Category::Kernel, max_pe_ns);
    }

    /// Charges a PE-side reorder kernel that streams at most `max_bytes_per_pe`
    /// through each PE's WRAM: launch overhead plus parallel reorder time,
    /// both attributed to PE-side modulation (the paper measured its launch
    /// cost as a minor ~4.5 % overhead, §VIII-D).
    pub fn charge_pe_reorder(&mut self, max_bytes_per_pe: u64) {
        let t = self.model.pe_reorder_time(max_bytes_per_pe) + self.model.kernel_launch_ns;
        self.charge(Category::PeModulation, t);
    }

    /// Total MRAM bytes in use across all PEs (for memory accounting in
    /// tests and benches).
    pub fn total_mram_used(&self) -> usize {
        self.pes.iter().map(Pe::mram_used).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::transpose8x8;

    #[test]
    fn burst_roundtrip() {
        let mut sys = PimSystem::new(DimmGeometry::single_group());
        let block: [u8; 64] = core::array::from_fn(|i| (i * 3 + 1) as u8);
        sys.write_burst(EgId(0), 16, &block);
        assert_eq!(sys.read_burst(EgId(0), 16), block);
    }

    #[test]
    fn burst_raw_order_interleaves_lanes() {
        let mut sys = PimSystem::new(DimmGeometry::single_group());
        // PE at lane 2 holds 8 bytes of 0xAB at offset 0.
        sys.pe_mut(PeId(2)).write(0, &[0xAB; 8]);
        let raw = sys.read_burst(EgId(0), 0);
        for beat in 0..LANES {
            for lane in 0..LANES {
                let expect = if lane == 2 { 0xAB } else { 0 };
                assert_eq!(raw[beat * LANES + lane], expect);
            }
        }
    }

    #[test]
    fn domain_transfer_yields_contiguous_words() {
        let mut sys = PimSystem::new(DimmGeometry::single_group());
        for lane in 0..LANES {
            let pe = sys.geometry().pe_of(EgId(0), lane);
            let word = (lane as u64 + 1) * 0x0101_0101_0101_0101;
            sys.pe_mut(pe).write(0, &word.to_le_bytes());
        }
        let mut block = sys.read_burst(EgId(0), 0).to_vec();
        transpose8x8(&mut block);
        for lane in 0..LANES {
            let w = u64::from_le_bytes(block[lane * 8..lane * 8 + 8].try_into().unwrap());
            assert_eq!(w, (lane as u64 + 1) * 0x0101_0101_0101_0101);
        }
    }

    #[test]
    fn read_bursts_concatenates() {
        let mut sys = PimSystem::new(DimmGeometry::single_group());
        let b0: [u8; 64] = [1; 64];
        let b1: [u8; 64] = [2; 64];
        sys.write_burst(EgId(0), 0, &b0);
        sys.write_burst(EgId(0), 8, &b1);
        let all = sys.read_bursts(EgId(0), 0, 16);
        assert_eq!(&all[..64], &b0[..]);
        assert_eq!(&all[64..], &b1[..]);
    }

    #[test]
    fn metering_accumulates_and_resets() {
        let mut sys = PimSystem::new(DimmGeometry::single_group());
        sys.charge(Category::PeMemAccess, 7.0);
        sys.run_kernel(100.0);
        let m = sys.meter();
        assert_eq!(m.pe_mem_access, 7.0);
        assert_eq!(m.kernel, 100.0);
        assert!(m.other > 0.0);
        let taken = sys.take_meter();
        assert_eq!(taken.total(), m.total());
        assert_eq!(sys.meter().total(), 0.0);
    }

    #[test]
    fn mram_usage_tracks_writes() {
        let mut sys = PimSystem::new(DimmGeometry::single_group());
        assert_eq!(sys.total_mram_used(), 0);
        sys.pe_mut(PeId(0)).write(0, &[0; 128]);
        assert_eq!(sys.total_mram_used(), 128);
    }
}
